"""The paper's encoder: k-means codebook over the quantized simplex (§3.2).

"Neighboring context vectors x can be encoded into the same context
code y" — the codebook is a k-means clustering whose ``k`` sets the
utility/privacy granularity.  Two deployment-relevant properties are
baked in:

1. **The codebook never sees user data.**  §4 assumes contexts are
   uniform over the normalized vector space, so the default ``fit``
   trains on *synthetic* uniform simplex samples (quantized to ``q``
   digits).  The codebook is therefore a public artifact shared by all
   agents, leaking nothing — fitting on real contexts is possible (pass
   ``X``) but changes the threat model and is flagged in the docstring.
2. **Encoding is deterministic** (crowd-blending ``eps_bar = 0``): a
   fitted codebook is a frozen array of centroids; ``encode`` is a pure
   nearest-centroid lookup of the *quantized* context, O(k d).
"""

from __future__ import annotations

import numpy as np

from ..clustering import KMeans, MiniBatchKMeans, cluster_sizes
from ..utils.exceptions import ValidationError
from ..utils.rng import ensure_rng
from ..utils.validation import (
    check_fitted,
    check_in_range,
    check_matrix,
    check_positive_int,
)
from .base import Encoder
from .quantization import quantize_simplex

__all__ = ["KMeansEncoder", "sample_uniform_simplex"]


def sample_uniform_simplex(
    n_samples: int, d: int, *, q: int | None = None, seed=None
) -> np.ndarray:
    """Uniform samples from the d-simplex (flat Dirichlet), optionally quantized.

    This is the public, data-free training distribution the default
    codebook uses, matching §4's uniformity assumption.
    """
    n_samples = check_positive_int(n_samples, name="n_samples")
    d = check_positive_int(d, name="d", minimum=2)
    rng = ensure_rng(seed)
    X = rng.dirichlet(np.ones(d), size=n_samples)
    if q is not None:
        X = quantize_simplex(X, q)
    return X


class KMeansEncoder(Encoder):
    """k-means codebook encoder.

    Parameters
    ----------
    n_codes:
        Codebook size ``k`` (paper: 2^10 synthetic, 2^5 multi-label,
        2^5 / 2^7 Criteo).
    n_features:
        Context dimension ``d``.
    q:
        Quantization digits applied before codebook lookup (paper: 1).
    algorithm:
        ``"minibatch"`` (Sculley 2010; paper's citation, default) or
        ``"lloyd"`` (exact; slower, used in small ablations).
    n_fit_samples:
        Number of synthetic simplex samples used by :meth:`fit` when no
        data is supplied.
    seed:
        Seed for codebook training (the *fitted* encoder is
        deterministic regardless).

    Examples
    --------
    >>> enc = KMeansEncoder(n_codes=8, n_features=3, seed=0).fit()
    >>> code = enc.encode(np.array([0.7, 0.2, 0.1]))
    >>> 0 <= code < 8
    True
    """

    def __init__(
        self,
        n_codes: int,
        n_features: int,
        *,
        q: int = 1,
        algorithm: str = "minibatch",
        n_fit_samples: int = 20_000,
        seed=None,
    ) -> None:
        self.n_codes = check_positive_int(n_codes, name="n_codes")
        self.n_features = check_positive_int(n_features, name="n_features", minimum=2)
        self.q = check_positive_int(q, name="q")
        if algorithm not in ("minibatch", "lloyd"):
            raise ValidationError(
                f"algorithm must be 'minibatch' or 'lloyd', got {algorithm!r}"
            )
        self.algorithm = algorithm
        self.n_fit_samples = check_positive_int(n_fit_samples, name="n_fit_samples")
        self.seed = seed
        self.centers_: np.ndarray | None = None
        self.fit_sizes_: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    def fit(self, X: np.ndarray | None = None) -> "KMeansEncoder":
        """Train the codebook.

        Parameters
        ----------
        X:
            Optional training contexts.  **Default None trains on
            synthetic uniform simplex samples** — the privacy-preserving
            option.  Supplying real user contexts produces a sharper
            codebook but makes the codebook itself data-dependent.
        """
        rng = ensure_rng(self.seed)
        if X is None:
            X = sample_uniform_simplex(
                max(self.n_fit_samples, self.n_codes), self.n_features, q=self.q, seed=rng
            )
        else:
            X = check_matrix(X, name="X", n_cols=self.n_features)
            X = quantize_simplex(X, self.q)
        if self.algorithm == "minibatch":
            km = MiniBatchKMeans(
                n_clusters=self.n_codes,
                batch_size=min(256, X.shape[0]),
                max_iter=300,
                seed=rng,
            ).fit(X)
        else:
            km = KMeans(n_clusters=self.n_codes, n_init=2, seed=rng).fit(X)
        self.centers_ = km.cluster_centers_
        labels = km.predict(X)
        self.fit_sizes_ = cluster_sizes(labels, self.n_codes)
        return self

    # ------------------------------------------------------------------ #
    def encode(self, context: np.ndarray) -> int:
        check_fitted(self, ["centers_"])
        x = quantize_simplex(self._check_context(context), self.q)
        d2 = ((self.centers_ - x) ** 2).sum(axis=1)
        return int(np.argmin(d2))

    def encode_batch(self, contexts: np.ndarray) -> np.ndarray:
        """Batch nearest-centroid, bit-exact against :meth:`encode`.

        Uses the scalar path's direct squared-difference expression
        with a broadcast leading axis (a trailing-axis reduction is
        independent of outer dimensions), *not* the BLAS expansion
        ``|x|² - 2x·c + |c|²`` of :func:`~repro.clustering.pairwise_sq_dists`,
        whose accumulation differs from the scalar expression and could
        flip an argmin near a tie — the base-class exactness contract
        forbids that.  Chunked so the ``(chunk, k, d)`` temporary stays
        small at fleet-horizon batch sizes.
        """
        check_fitted(self, ["centers_"])
        contexts = check_matrix(contexts, name="contexts", n_cols=self.n_features)
        Xq = quantize_simplex(contexts, self.q)
        out = np.empty(Xq.shape[0], dtype=np.intp)
        chunk = max(1, (1 << 22) // (self.n_codes * self.n_features))
        for start in range(0, Xq.shape[0], chunk):
            block = Xq[start : start + chunk]
            d2 = ((self.centers_[None, :, :] - block[:, None, :]) ** 2).sum(axis=2)
            out[start : start + chunk] = np.argmin(d2, axis=1)
        return out

    def decode(self, code: int) -> np.ndarray:
        check_fitted(self, ["centers_"])
        code = check_in_range(code, name="code", low=0, high=self.n_codes)
        return self.centers_[code].copy()

    def decode_batch(self, codes: np.ndarray) -> np.ndarray:
        """Gather centroids for a batch of codes — one fancy-index, no loop."""
        check_fitted(self, ["centers_"])
        return self.centers_[self._check_codes(codes)].copy()

    # ------------------------------------------------------------------ #
    def estimated_min_crowd(self, n_users: int) -> int:
        """Estimate the crowd-blending ``l`` for ``n_users`` participants.

        Scales the fit-time cluster occupancy (a proxy for the encoding
        distribution) to the deployment population: the paper's
        "optimal encoder" would give ``n_users / k``; a skewed codebook
        gives proportionally less for its smallest cluster.
        """
        check_fitted(self, ["centers_", "fit_sizes_"])
        n_users = check_positive_int(n_users, name="n_users")
        total = int(self.fit_sizes_.sum())
        if total == 0:
            return 0
        smallest_share = float(self.fit_sizes_.min()) / total
        return int(n_users * smallest_share)

    def codebook_state(self) -> dict:
        """Serializable public codebook (centroids + config)."""
        check_fitted(self, ["centers_"])
        return {
            "n_codes": self.n_codes,
            "n_features": self.n_features,
            "q": self.q,
            "centers": self.centers_.copy(),
        }

    @classmethod
    def from_codebook_state(cls, state: dict) -> "KMeansEncoder":
        """Rebuild a fitted encoder from :meth:`codebook_state` output."""
        enc = cls(int(state["n_codes"]), int(state["n_features"]), q=int(state["q"]))
        centers = np.asarray(state["centers"], dtype=np.float64)
        if centers.shape != (enc.n_codes, enc.n_features):
            raise ValidationError(
                f"codebook centers shape {centers.shape} does not match "
                f"({enc.n_codes}, {enc.n_features})"
            )
        enc.centers_ = centers
        return enc
