"""Exact grid encoder: one code per quantized simplex point.

This is the paper's *identity* encoding — the cardinality-``n`` code
space of Eq. (1) before any clustering compresses it to ``k < n``
codes.  It exists to

* reproduce Figure 2's enumeration (``q=1, d=3 ⇒ 66`` codes),
* serve as the "no compression" arm of encoder ablations, and
* demonstrate the rank/unrank bijection at sizes where materializing
  the grid is impossible.
"""

from __future__ import annotations

import numpy as np

from ..privacy.cardinality import (
    composition_rank,
    composition_unrank,
    context_cardinality,
)
from ..utils.validation import check_in_range, check_positive_int
from .base import Encoder
from .quantization import grid_resolution, to_grid_integers

__all__ = ["GridEncoder"]


class GridEncoder(Encoder):
    """Bijective encoder from q-digit simplex points to ``{0, …, n-1}``.

    Parameters
    ----------
    n_features:
        Context dimension ``d`` (≥ 2).
    q:
        Decimal precision.

    Notes
    -----
    ``n_codes`` equals Eq. (1)'s cardinality, which grows fast —
    ``q=1, d=10`` already gives 92,378 codes.  The encoder never
    materializes the grid: encoding is combinatorial *ranking* of the
    quantized composition, O(d · 10^q).

    Examples
    --------
    >>> enc = GridEncoder(n_features=3, q=1)
    >>> enc.n_codes
    66
    >>> enc.encode(np.array([1.0, 0.0, 0.0]))  # (10,0,0) is rank 65
    65
    """

    def __init__(self, n_features: int, q: int = 1) -> None:
        self.n_features = check_positive_int(n_features, name="n_features", minimum=2)
        self.q = check_positive_int(q, name="q")
        self.n_codes = context_cardinality(q, self.n_features)
        self._scale = grid_resolution(q)

    def encode(self, context: np.ndarray) -> int:
        x = self._check_context(context)
        counts = to_grid_integers(x, self.q)
        return composition_rank(counts, self._scale)

    def encode_batch(self, contexts: np.ndarray) -> np.ndarray:
        from ..utils.validation import check_matrix

        contexts = check_matrix(contexts, name="contexts", n_cols=self.n_features)
        counts = to_grid_integers(contexts, self.q)
        return np.array(
            [composition_rank(row, self._scale) for row in counts], dtype=np.intp
        )

    def decode(self, code: int) -> np.ndarray:
        code = check_in_range(code, name="code", low=0, high=self.n_codes)
        parts = composition_unrank(code, self._scale, self.n_features)
        return np.asarray(parts, dtype=np.float64) / self._scale

    def decode_batch(self, codes: np.ndarray) -> np.ndarray:
        """Unrank a batch of codes; the combinatorial unranking is
        inherently per-code, but the normalization is one vector op."""
        codes = self._check_codes(codes)
        if codes.size == 0:
            return np.empty((0, self.n_features), dtype=np.float64)
        parts = np.stack(
            [composition_unrank(int(c), self._scale, self.n_features) for c in codes]
        )
        return np.asarray(parts, dtype=np.float64) / self._scale
