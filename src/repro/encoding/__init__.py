"""Context encoders (paper §3.2): quantization + codebooks."""

from .base import Encoder
from .grid import GridEncoder
from .kmeans_encoder import KMeansEncoder, sample_uniform_simplex
from .lsh import LSHEncoder
from .quantization import grid_resolution, is_on_grid, quantize_simplex, to_grid_integers

__all__ = [
    "Encoder",
    "GridEncoder",
    "KMeansEncoder",
    "LSHEncoder",
    "sample_uniform_simplex",
    "quantize_simplex",
    "to_grid_integers",
    "grid_resolution",
    "is_on_grid",
]
