"""Fixed-precision simplex quantization (paper §3.2).

Contexts are represented as "normalized vectors of fixed precision,
using q digits for each entry" — i.e. points of the integer grid

.. math::

    G_{q,d} = \\{ v / 10^q : v \\in \\mathbb{N}^d, \\; \\sum_i v_i = 10^q \\}.

Naive per-entry rounding of a normalized vector does **not** land on
this grid (the rounded entries rarely sum to exactly ``10^q``), so
:func:`quantize_simplex` uses the largest-remainder method: floor every
scaled entry, then distribute the remaining units to the largest
fractional parts.  The result is always an exact grid point, the
prerequisite for the stars-and-bars cardinality (Eq. 1) and for grid-
encoder ranking.
"""

from __future__ import annotations

import numpy as np

from ..utils.math import normalize_simplex
from ..utils.validation import check_array, check_positive_int

__all__ = ["quantize_simplex", "to_grid_integers", "grid_resolution", "is_on_grid"]


def grid_resolution(q: int) -> int:
    """Number of unit steps per axis: ``10^q``."""
    q = check_positive_int(q, name="q")
    return 10**q


def to_grid_integers(x: np.ndarray, q: int) -> np.ndarray:
    """Quantize a (batch of) normalized vector(s) to integer grid counts.

    Parameters
    ----------
    x:
        Vector(s) on (or near) the simplex; re-normalized defensively.
    q:
        Decimal precision.

    Returns
    -------
    ndarray of int64 with the same shape, each row summing to ``10^q``.

    Examples
    --------
    >>> to_grid_integers(np.array([1/3, 1/3, 1/3]), 1).tolist()
    [4, 3, 3]
    """
    scale = grid_resolution(q)
    arr = check_array(x, name="x")
    squeeze = arr.ndim == 1
    arr = np.atleast_2d(arr)
    arr = normalize_simplex(arr, axis=1)
    scaled = arr * scale
    floors = np.floor(scaled).astype(np.int64)
    remainders = scaled - floors
    deficit = scale - floors.sum(axis=1)
    # hand the missing units to the largest remainders, ties by index
    order = np.argsort(-remainders, axis=1, kind="stable")
    out = floors
    for i in range(out.shape[0]):
        need = int(deficit[i])
        if need > 0:
            out[i, order[i, :need]] += 1
        elif need < 0:  # pragma: no cover - cannot happen after floor
            out[i, order[i, need:]] -= 1
    return out[0] if squeeze else out


def quantize_simplex(x: np.ndarray, q: int) -> np.ndarray:
    """Quantize to the q-digit simplex grid, returning float grid points.

    >>> quantize_simplex(np.array([0.61, 0.29, 0.10]), 1).tolist()
    [0.6, 0.3, 0.1]
    """
    return to_grid_integers(x, q).astype(np.float64) / grid_resolution(q)


def is_on_grid(x: np.ndarray, q: int, *, atol: float = 1e-12) -> bool:
    """Whether ``x`` is exactly a q-digit grid point (sums to 1, q digits)."""
    arr = check_array(x, name="x", ndim=1)
    scale = grid_resolution(q)
    scaled = arr * scale
    return bool(
        np.all(np.abs(scaled - np.round(scaled)) <= atol * scale)
        and abs(arr.sum() - 1.0) <= atol * scale
    )
