"""Shared-memory plumbing for the process worker backend.

``worker_backend="process"`` historically shipped every shard's whole
state *and results* through pickle in both directions: the parent
pickled agents, sessions — including each dataset's
:class:`~repro.data.environment.TraceRowTable`, which exists precisely
once per dataset — and the worker pickled the ``(n, T)`` result
matrices back.  On multi-shard populations over one dataset that
serializes the same megabyte-scale row tables once per shard and pays
two full serializations per result byte, which is where the process
backend's profit went.

This module gives the process backend the thread backend's memory
model: one set of arrays, many writers at disjoint rows.

* The parent creates results and row tables as
  :class:`multiprocessing.shared_memory.SharedMemory` blocks through a
  :class:`ShmPool` (the creator-side registry; owns every block and
  unlinks each exactly once).
* Workers receive a small :class:`ShmArrayRef` descriptor — name,
  shape, dtype — embedded in the (otherwise ordinary) pickled shard
  payload via the pickle *persistent-id* protocol (:func:`shm_dumps` /
  :func:`shm_loads`), attach the named block on first use, and write
  results straight into the global matrices at their shard's row
  slice.  Attachments are cached per worker process, so a pool re-spawn
  after a crash (``BrokenProcessPool`` supervision) just re-attaches by
  name — blocks stay valid until the parent unlinks them.
* The return trip pickles only the mutated agents and sessions; any
  reference they hold to an attached array (a session's dataset
  storage, say) collapses back into its descriptor, and the parent
  resolves descriptors to its *original* arrays — adopted state aliases
  the caller's own storage, exactly like the thread path.

Worker-side attachments are explicitly **unregistered** from
:mod:`multiprocessing.resource_tracker`: the parent is the single
owner, so a worker's tracker must neither warn about nor unlink blocks
it merely mapped (the double-unlink / leaked-segment noise the tracker
otherwise produces).  Creator-side blocks stay tracker-registered until
:meth:`ShmPool.close` unlinks them — if the parent dies without
closing, the tracker is the backstop that still removes the segments.

Everything degrades gracefully: set :data:`SHM_ENV_VAR`
(``REPRO_NO_SHM=1``) or run on a platform without POSIX shared memory
and the process backend falls back to the historical
pickle-everything protocol, bit-identical either way.
"""

from __future__ import annotations

import io
import os
import pickle
from dataclasses import dataclass

import numpy as np

__all__ = [
    "SHM_ENV_VAR",
    "ShmArrayRef",
    "ShmPool",
    "attach",
    "shm_enabled",
    "shm_dumps",
    "shm_loads",
    "leaked_segments",
]

#: set (to anything non-empty) to disable shared-memory transport and
#: force the process backend onto the legacy pickle-both-ways protocol
SHM_ENV_VAR = "REPRO_NO_SHM"

#: every segment this package creates is named with this prefix, so
#: leak checks (and humans inspecting /dev/shm) can attribute them
SEGMENT_PREFIX = "p2b-"


def shm_enabled() -> bool:
    """Whether the process backend should use shared-memory transport."""
    if os.environ.get(SHM_ENV_VAR, ""):
        return False
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - all supported platforms have it
        return False
    return True


@dataclass(frozen=True)
class ShmArrayRef:
    """Descriptor of one array living in a named shared-memory block.

    Small and picklable by construction — this is what crosses the
    process boundary instead of the array's bytes.  ``dtype`` is the
    numpy dtype string (``"<f8"``), so the attached view reconstructs
    byte-exactly.
    """

    name: str
    shape: tuple[int, ...]
    dtype: str

    def nbytes(self) -> int:
        n = 1
        for s in self.shape:
            n *= int(s)
        return n * np.dtype(self.dtype).itemsize


class ShmPool:
    """Creator-side registry of shared-memory blocks (one per run).

    The parent process makes one pool per dispatch, allocates result
    matrices with :meth:`empty`, mirrors read-shared arrays (row
    tables) with :meth:`share`, hands out :class:`ShmArrayRef`
    descriptors, and finally :meth:`close`\\ s the pool — which unlinks
    every block exactly once, idempotently, even if caller-side views
    are still alive (the name disappears immediately; the mapping is
    freed when the last view drops).
    """

    def __init__(self) -> None:
        self._segments: dict[str, object] = {}  # name -> SharedMemory
        self._arrays: dict[str, np.ndarray] = {}  # name -> parent-side array
        self._refs: dict[int, ShmArrayRef] = {}  # id(array) -> descriptor
        self._closed = False

    def _new_segment(self, nbytes: int):
        from multiprocessing import shared_memory

        if self._closed:
            raise ValueError("ShmPool is closed")
        while True:
            name = f"{SEGMENT_PREFIX}{os.getpid():x}-{os.urandom(6).hex()}"
            try:
                seg = shared_memory.SharedMemory(
                    name=name, create=True, size=max(1, int(nbytes))
                )
            except FileExistsError:  # pragma: no cover - 48 random bits
                continue
            self._segments[name] = seg
            return seg

    def empty(self, shape, dtype) -> np.ndarray:
        """A zero-filled parent-owned array in a fresh shared block."""
        dt = np.dtype(dtype)
        shape = tuple(int(s) for s in np.atleast_1d(np.asarray(shape, dtype=np.int64)))
        nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
        seg = self._new_segment(nbytes)
        arr = np.ndarray(shape, dtype=dt, buffer=seg.buf)
        arr.fill(0)
        self._arrays[seg.name] = arr
        self._refs[id(arr)] = ShmArrayRef(seg.name, shape, dt.str)
        return arr

    def share(self, array: np.ndarray) -> ShmArrayRef | None:
        """Mirror ``array`` into shared memory; idempotent per object.

        Returns the array's descriptor, or ``None`` when the array is
        not shareable (empty, or an object/structured dtype) — callers
        just fall back to pickling it by value.  The pool resolves the
        descriptor back to the **original** ``array`` object, so
        round-tripped parent-side state keeps its identity.
        """
        ref = self._refs.get(id(array))
        if ref is not None:
            return ref
        arr = np.asarray(array)
        if arr.nbytes == 0 or arr.dtype.hasobject or arr.dtype.names is not None:
            return None
        seg = self._new_segment(arr.nbytes)
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
        view[...] = arr
        ref = ShmArrayRef(seg.name, tuple(int(s) for s in arr.shape), arr.dtype.str)
        self._arrays[seg.name] = array
        self._refs[id(array)] = ref
        return ref

    def ref_for(self, array: np.ndarray) -> ShmArrayRef | None:
        return self._refs.get(id(array))

    def resolve(self, ref: ShmArrayRef) -> np.ndarray | None:
        """The parent-side array a descriptor stands for (``None`` if
        the descriptor belongs to some other pool)."""
        return self._arrays.get(ref.name)

    def close(self) -> None:
        """Unlink every block exactly once (idempotent, crash-safe).

        Live views of :meth:`empty` arrays keep their mapping until
        they are garbage collected (``SharedMemory.close`` refuses to
        unmap exported buffers); the *name* is removed here regardless,
        which is what the no-leaked-segments contract is about.
        """
        if self._closed:
            return
        self._closed = True
        segments = list(self._segments.values())
        self._segments.clear()
        self._arrays.clear()
        self._refs.clear()
        for seg in segments:
            try:
                seg.close()
            except BufferError:
                # a caller-side view is still alive; the mapping frees
                # itself when the view does — unlinking is what matters
                pass
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "ShmPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # safety net; close() is the contract
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter teardown
            pass


# --------------------------------------------------------------------- #
# worker-side attachment cache: one mapping per (process, block), reused
# across every task the worker runs; a re-spawned pool's fresh workers
# simply attach again by name
_ATTACHED: dict[str, tuple[object, np.ndarray]] = {}
_REF_BY_ID: dict[int, ShmArrayRef] = {}


def _open_untracked(name: str):
    """Attach an existing block without taking tracker ownership.

    The parent owns every block.  Python 3.13 has ``track=False`` for
    exactly this.  On earlier versions attaching re-registers the name,
    but workers share the *parent's* resource-tracker daemon (the
    tracker fd is inherited through fork and spawn alike), whose cache
    is one set per resource type — so the attach-side register is a
    no-op duplicate of the parent's own registration and needs no
    counter-``unregister``.  Explicitly unregistering here (the idiom
    for attaching across unrelated process trees) would instead remove
    the PARENT's registration from the shared daemon and make the
    eventual ``unlink`` die with a KeyError inside the tracker.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        return shared_memory.SharedMemory(name=name)


def attach(ref: ShmArrayRef) -> np.ndarray:
    """The array behind ``ref``, attached and cached for this process.

    Repeated calls for one block return the *same* ndarray object, so
    aliasing relationships between shared arrays (a row table whose
    ``expected`` IS its ``action_rewards``) survive the round trip.
    """
    hit = _ATTACHED.get(ref.name)
    if hit is not None:
        return hit[1]
    seg = _open_untracked(ref.name)
    arr = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=seg.buf)
    _ATTACHED[ref.name] = (seg, arr)
    _REF_BY_ID[id(arr)] = ref
    return arr


class _ShmPickler(pickle.Pickler):
    """Pickler that collapses registered arrays into descriptors."""

    def __init__(self, file, pool: ShmPool | None) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._pool = pool

    def persistent_id(self, obj):
        if type(obj) is np.ndarray:
            if self._pool is not None:
                ref = self._pool.ref_for(obj)
                if ref is not None:
                    return ref
            ref = _REF_BY_ID.get(id(obj))
            if ref is not None:
                return ref
        return None


class _ShmUnpickler(pickle.Unpickler):
    """Unpickler resolving descriptors: pool-owned arrays in the
    parent, cached attachments in a worker."""

    def __init__(self, file, pool: ShmPool | None) -> None:
        super().__init__(file)
        self._pool = pool

    def persistent_load(self, pid):
        if isinstance(pid, ShmArrayRef):
            if self._pool is not None:
                arr = self._pool.resolve(pid)
                if arr is not None:
                    return arr
            return attach(pid)
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def shm_dumps(obj, pool: ShmPool | None = None) -> bytes:
    """``pickle.dumps`` with registered/attached arrays sent by reference.

    With no ``pool`` and no cached attachments this is plain pickling —
    the legacy-protocol fallback costs nothing extra.
    """
    buf = io.BytesIO()
    _ShmPickler(buf, pool).dump(obj)
    return buf.getvalue()


def shm_loads(data: bytes, pool: ShmPool | None = None):
    """Inverse of :func:`shm_dumps` (plain ``pickle.loads`` otherwise)."""
    return _ShmUnpickler(io.BytesIO(data), pool).load()


def leaked_segments() -> list[str]:
    """Names of this package's segments still present in ``/dev/shm``.

    The leak-regression check: after any run — normal exit, degraded
    ``skip_shard``, injected worker crashes — this must be empty.
    Returns ``[]`` on platforms without a ``/dev/shm``.
    """
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-Linux
        return []
    return sorted(n for n in os.listdir(root) if n.startswith(SEGMENT_PREFIX))
