"""Versioned on-disk fleet snapshots (crash/resume support).

A checkpoint is the :func:`~repro.utils.serialization.state_to_bytes`
encoding of one :class:`FleetCheckpoint`, written atomically (temp file
+ ``os.replace``) so an interrupted write can never clobber the last
good snapshot.  The payload carries everything a bit-identical restart
needs:

* the **population pickle** — every agent with its policy state, RNG
  streams, participation counters and pending report outbox, and every
  session with its walk cursors (pickle round-trips ``numpy``
  ``Generator`` state exactly);
* the **partial result matrices** and the progress cursor
  (``completed`` of ``n_interactions`` rounds) of an in-flight run;
* the **engine knobs** the run was started with, so ``resume`` rebuilds
  an equivalently configured :class:`~repro.sim.fleet.FleetRunner`;
* an opaque **caller context** blob (``run_setting`` stores its
  collection-phase state there), plus any shards already degraded out.

``CHECKPOINT_VERSION`` gates the format: :func:`load_checkpoint`
refuses files written by a different version (or by anything that is
not a fleet checkpoint at all) with a
:class:`~repro.utils.exceptions.CheckpointError` naming the mismatch.

Snapshots are transport-agnostic by design: the process backend's
shared-memory blocks (:mod:`repro.sim.shm`) are per-dispatch plumbing
— created when a segment starts, unlinked when it ends — so the
matrices stored here are always ordinary owned arrays, and a
checkpointed run resumes bit-identically on any backend/worker-count
combination (``tests/sim/test_worker_invariance.py`` pins this).
Engine knobs added after a snapshot was written restore to their
defaults (``resume`` reads them with ``.get``), so old checkpoints
stay loadable across engine growth.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np

from ..utils.exceptions import CheckpointError
from ..utils.serialization import state_from_bytes, state_to_bytes

__all__ = [
    "FleetCheckpoint",
    "save_checkpoint",
    "load_checkpoint",
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
]

#: format marker distinguishing fleet checkpoints from other npz blobs
CHECKPOINT_MAGIC = "repro-fleet-checkpoint"

#: bump on any incompatible change to the checkpoint layout
CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class FleetCheckpoint:
    """One restartable snapshot of a fleet run (see module docstring)."""

    completed: int  #: rounds already run (== columns in the matrices)
    n_interactions: int  #: total horizon of the checkpointed run
    track_expected: bool  #: whether the run tracks the expected channel
    rewards: np.ndarray  #: completed reward columns, (n_agents, completed)
    actions: np.ndarray  #: completed action columns, (n_agents, completed)
    expected: np.ndarray | None  #: completed expected columns, or None
    expected_ok: np.ndarray  #: per-agent expected-row validity so far
    population: bytes  #: pickle of ``(agents, sessions)``
    engine: dict  #: the runner's engine knobs (see ``_engine_dict``)
    checkpoint_every: int | None  #: cadence the run was snapshotting at
    context: bytes | None  #: opaque caller blob (e.g. collection state)
    dropped: tuple = ()  #: DroppedShard records accumulated so far


def save_checkpoint(path, ckpt: FleetCheckpoint) -> None:
    """Atomically write ``ckpt`` to ``path``.

    The temp file lands in the destination directory (``os.replace``
    must not cross filesystems), so a crash mid-write leaves either the
    old snapshot or none — never a torn file.
    """
    path = os.fspath(path)
    state = {
        "magic": CHECKPOINT_MAGIC,
        "version": CHECKPOINT_VERSION,
        "completed": int(ckpt.completed),
        "n_interactions": int(ckpt.n_interactions),
        "track_expected": bool(ckpt.track_expected),
        "has_expected": ckpt.expected is not None,
        "has_context": ckpt.context is not None,
        "rewards": np.asarray(ckpt.rewards, dtype=np.float64),
        "actions": np.asarray(ckpt.actions, dtype=np.intp),
        "expected_ok": np.asarray(ckpt.expected_ok, dtype=bool),
        "population": np.frombuffer(ckpt.population, dtype=np.uint8),
        "engine": json.loads(json.dumps(dict(ckpt.engine))),
        "checkpoint_every": ckpt.checkpoint_every,
        "dropped": [
            {
                "shard": d.shard,
                "n_agents": d.n_agents,
                "agent_ids": list(d.agent_ids),
                "attempts": d.attempts,
                "error": d.error,
            }
            for d in ckpt.dropped
        ],
    }
    if ckpt.expected is not None:
        state["expected"] = np.asarray(ckpt.expected, dtype=np.float64)
    if ckpt.context is not None:
        state["context"] = np.frombuffer(ckpt.context, dtype=np.uint8)
    blob = state_to_bytes(state)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            fh.write(blob)
        os.replace(tmp, path)
    except OSError as exc:
        raise CheckpointError(
            f"could not write checkpoint {path!r}: {exc}"
        ) from exc
    finally:
        if os.path.exists(tmp):  # pragma: no cover - crash-path cleanup
            try:
                os.remove(tmp)
            except OSError:
                pass


def load_checkpoint(path) -> FleetCheckpoint:
    """Read and validate the checkpoint at ``path``.

    Every failure mode — missing file, truncated/corrupt bytes, a blob
    that is not a fleet checkpoint, a version from a different library
    release — raises :class:`~repro.utils.exceptions.CheckpointError`
    with the reason, never a bare parsing exception.
    """
    path = os.fspath(path)
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except OSError as exc:
        raise CheckpointError(f"could not read checkpoint {path!r}: {exc}") from exc
    try:
        state = state_from_bytes(blob)
    except Exception as exc:
        raise CheckpointError(
            f"checkpoint {path!r} is corrupt or not a checkpoint: {exc}"
        ) from exc
    if state.get("magic") != CHECKPOINT_MAGIC:
        raise CheckpointError(
            f"{path!r} is not a fleet checkpoint (missing format marker)"
        )
    version = state.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has format version {version!r}; this "
            f"library reads version {CHECKPOINT_VERSION} — re-run the "
            "original job or upgrade/downgrade to match"
        )
    from .fleet import DroppedShard  # local: fleet imports this module lazily

    try:
        return FleetCheckpoint(
            completed=int(state["completed"]),
            n_interactions=int(state["n_interactions"]),
            track_expected=bool(state["track_expected"]),
            rewards=np.asarray(state["rewards"], dtype=np.float64),
            actions=np.asarray(state["actions"], dtype=np.intp),
            expected=(
                np.asarray(state["expected"], dtype=np.float64)
                if state.get("has_expected")
                else None
            ),
            expected_ok=np.asarray(state["expected_ok"], dtype=bool),
            population=state["population"].tobytes(),
            engine=dict(state["engine"]),
            checkpoint_every=(
                None
                if state.get("checkpoint_every") is None
                else int(state["checkpoint_every"])
            ),
            context=(
                state["context"].tobytes() if state.get("has_context") else None
            ),
            dropped=tuple(
                DroppedShard(
                    shard=int(d["shard"]),
                    n_agents=int(d["n_agents"]),
                    agent_ids=tuple(d["agent_ids"]),
                    attempts=int(d["attempts"]),
                    error=str(d["error"]),
                )
                for d in state.get("dropped", [])
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint {path!r} is missing or mistypes a field: {exc}"
        ) from exc
