"""Deterministic fault injection for the fleet engine (chaos harness).

Production fault tolerance is only trustworthy if failure paths are
*exercised*, and failure paths are only testable if failures are
reproducible.  A :class:`FaultPlan` injects faults into well-defined
points of the execution engine — a shard step raising, a worker
process dying, a report batch being corrupted, a shard stalling past a
timeout — **deterministically**: the same plan injects the same faults
at the same (shard, round) coordinates on every run, so a chaos
failure found in CI replays locally from its spec string alone.

Injection points
----------------

* ``_Shard.step`` calls :meth:`FaultPlan.on_step` once per round when a
  plan is armed (``FleetRunner(fault_plan=...)`` or the env knob).  A
  matched spec raises :class:`InjectedFault` (kind ``raise``), kills
  the hosting worker process (kind ``crash`` — downgraded to a raise on
  the thread backend, where exiting would kill the caller), or sleeps
  (kind ``delay``).
* :meth:`~repro.core.system.P2BSystem.collect` (and the async variant)
  pass drained report columns through :meth:`FaultPlan.corrupt_batch`,
  which deterministically mangles a fraction of tuples (negative codes,
  out-of-range actions, non-finite rewards) — exactly the malformed
  input the shuffler's quarantine must absorb.

Faults fire on **attempt 0 only** (configurable per explicit spec): a
supervised retry re-runs the shard with ``attempt=1``, the plan stays
silent, and the retry succeeds — which is how the test suite proves
retried runs are bitwise equal to fault-free runs.

The env knob
------------

``REPRO_FAULTS`` activates a plan process-wide (worker processes
inherit it, so process-backend chaos needs no extra plumbing)::

    REPRO_FAULTS="seed=7;raise=0.05;crash=0.02;corrupt=0.1"

Spec grammar (semicolon-separated ``key=value`` pairs):

``seed``
    Root of the deterministic hash (default 0).
``raise`` / ``crash`` / ``delay``
    Per-(shard, round) probabilities of each random fault kind.
``corrupt``
    Per-batch probability that a collected report batch is corrupted.
``corrupt_frac``
    Fraction of tuples mangled within a corrupted batch (default 0.2).
``delay_s``
    Sleep duration of a delay fault in seconds (default 0.05).
``at``
    An explicit fault: ``at=kind:shard:round`` or
    ``kind:shard:round:attempt`` (repeatable), e.g. ``at=crash:0:3``.

Randomness is *stateless*: each potential fault site hashes
``(seed, kind, shard, round)`` through a ``SeedSequence`` to a uniform
in ``[0, 1)`` and fires iff it lands under the configured probability.
No counters, no RNG objects — the same plan string fires identically
in any process, any backend, any retry order.
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass

import numpy as np

from ..utils.exceptions import ConfigError

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "FAULT_KINDS",
    "FAULTS_ENV_VAR",
    "active_plan",
]

#: environment variable holding a process-wide fault-plan spec
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: recognized step-fault kinds: ``raise`` throws :class:`InjectedFault`
#: inside the shard step, ``crash`` kills the hosting worker process
#: (a raise on the thread backend), ``delay`` sleeps the shard.
FAULT_KINDS = ("raise", "crash", "delay")


class InjectedFault(RuntimeError):
    """A fault deliberately raised by an armed :class:`FaultPlan`.

    Deliberately *not* a :class:`~repro.utils.exceptions.ReproError`:
    an injected fault models arbitrary third-party breakage, and the
    supervision layer must treat it exactly like one.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One explicit fault: ``kind`` at (``shard``, ``round``, ``attempt``)."""

    kind: str
    shard: int
    round: int
    attempt: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )

    def spec_str(self) -> str:
        """The ``at=`` grammar form of this spec."""
        return f"{self.kind}:{self.shard}:{self.round}:{self.attempt}"


def _hash01(seed: int, *keys) -> float:
    """Stateless uniform in ``[0, 1)`` from ``(seed, *keys)``.

    ``SeedSequence`` mixing is stable across processes and platforms —
    string keys digest through ``crc32``, never ``hash()``, whose
    per-process randomization would make worker processes disagree
    with the parent — which is what makes plans replayable without
    shipping RNG state.
    """
    entropy = [int(seed) & 0xFFFFFFFF]
    for key in keys:
        if isinstance(key, str):
            entropy.append(zlib.crc32(key.encode("utf-8")) & 0xFFFFFFFF)
        else:
            entropy.append(int(key) & 0xFFFFFFFF)
    state = np.random.SeedSequence(entropy).generate_state(1, dtype=np.uint32)
    return float(state[0]) / float(2**32)


class FaultPlan:
    """A deterministic schedule of injected engine faults.

    Parameters
    ----------
    specs:
        Explicit :class:`FaultSpec` entries (fire exactly at their
        coordinates).
    seed:
        Root of the stateless hash driving the random rates.
    p_raise, p_crash, p_delay:
        Per-(shard, round) probabilities of each step-fault kind,
        evaluated independently (raise wins ties, then crash, then
        delay) and only on attempt 0.
    p_corrupt:
        Per-batch probability that a collected report batch is
        corrupted by :meth:`corrupt_batch`.
    corrupt_frac:
        Fraction of tuples mangled within a corrupted batch.
    delay_s:
        Sleep duration of a delay fault, in seconds.
    """

    def __init__(
        self,
        specs: "list[FaultSpec] | None" = None,
        *,
        seed: int = 0,
        p_raise: float = 0.0,
        p_crash: float = 0.0,
        p_delay: float = 0.0,
        p_corrupt: float = 0.0,
        corrupt_frac: float = 0.2,
        delay_s: float = 0.05,
    ) -> None:
        for name, p in (
            ("p_raise", p_raise),
            ("p_crash", p_crash),
            ("p_delay", p_delay),
            ("p_corrupt", p_corrupt),
            ("corrupt_frac", corrupt_frac),
        ):
            if not 0.0 <= float(p) <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {p}")
        if delay_s < 0:
            raise ConfigError(f"delay_s must be >= 0, got {delay_s}")
        self.specs = tuple(specs or ())
        self.seed = int(seed)
        self.p_raise = float(p_raise)
        self.p_crash = float(p_crash)
        self.p_delay = float(p_delay)
        self.p_corrupt = float(p_corrupt)
        self.corrupt_frac = float(corrupt_frac)
        self.delay_s = float(delay_s)

    # ------------------------------------------------------------------ #
    # spec round-trip
    def to_spec(self) -> str:
        """The plan as a ``REPRO_FAULTS`` string (parse → to_spec is stable)."""
        parts = [f"seed={self.seed}"]
        for key, value, default in (
            ("raise", self.p_raise, 0.0),
            ("crash", self.p_crash, 0.0),
            ("delay", self.p_delay, 0.0),
            ("corrupt", self.p_corrupt, 0.0),
            ("corrupt_frac", self.corrupt_frac, 0.2),
            ("delay_s", self.delay_s, 0.05),
        ):
            if value != default:
                parts.append(f"{key}={value:g}")
        parts.extend(f"at={s.spec_str()}" for s in self.specs)
        return ";".join(parts)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from the ``REPRO_FAULTS`` grammar (see module doc)."""
        kwargs: dict = {}
        specs: list[FaultSpec] = []
        for part in spec.split(";"):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ConfigError(
                    f"bad fault spec fragment {part!r} (expected key=value; "
                    f"full grammar in repro.sim.faults)"
                )
            key, _, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            try:
                if key == "seed":
                    kwargs["seed"] = int(value)
                elif key in ("raise", "crash", "delay", "corrupt"):
                    kwargs[f"p_{key}"] = float(value)
                elif key in ("corrupt_frac", "delay_s"):
                    kwargs[key] = float(value)
                elif key == "at":
                    fields = value.split(":")
                    if len(fields) not in (3, 4):
                        raise ValueError("expected kind:shard:round[:attempt]")
                    kind = fields[0]
                    nums = [int(f) for f in fields[1:]]
                    specs.append(FaultSpec(kind, *nums))
                else:
                    raise ValueError(f"unknown key {key!r}")
            except (ValueError, TypeError) as exc:
                raise ConfigError(
                    f"bad fault spec fragment {part!r}: {exc} "
                    f"(full grammar in repro.sim.faults)"
                ) from None
        return cls(specs, **kwargs)

    # ------------------------------------------------------------------ #
    # injection points
    def step_fault(self, shard: int, t: int, attempt: int) -> str | None:
        """The fault kind armed at ``(shard, round t, attempt)``, if any.

        Pure — consults explicit specs first, then the stateless hash
        for each random rate.  Random faults arm on attempt 0 only, so
        one retry always clears them.
        """
        for s in self.specs:
            if s.shard == shard and s.round == t and s.attempt == attempt:
                return s.kind
        if attempt == 0:
            for kind, p in (
                ("raise", self.p_raise),
                ("crash", self.p_crash),
                ("delay", self.p_delay),
            ):
                if p > 0.0 and _hash01(self.seed, kind, shard, t) < p:
                    return kind
        return None

    def on_step(
        self, shard: int, t: int, attempt: int, *, in_worker: bool = False
    ) -> None:
        """Fire whatever fault is armed at this step (the engine hook).

        ``in_worker`` distinguishes a disposable worker process (where a
        crash fault genuinely kills the process, exercising pool
        respawn) from the caller's own process (where it degrades to a
        raise — killing the caller would take the test suite with it).
        """
        kind = self.step_fault(shard, t, attempt)
        if kind is None:
            return
        if kind == "delay":
            time.sleep(self.delay_s)
            return
        if kind == "crash" and in_worker:
            os._exit(17)  # simulate a hard worker death (no cleanup)
        raise InjectedFault(
            f"injected {kind} fault in shard {shard} at round {t} "
            f"(attempt {attempt})"
        )

    def corrupt_batch(
        self,
        batch_index: int,
        codes: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """Deterministically mangle a report batch (maybe).

        Returns ``(codes, actions, rewards, n_corrupted)`` — copies
        when corruption fires, the originals untouched otherwise.  The
        mangled tuples rotate through the three malformations the
        quarantine must catch: negative codes, negative actions, and
        non-finite rewards.
        """
        n = int(np.asarray(codes).shape[0])
        if (
            n == 0
            or self.p_corrupt <= 0.0
            or _hash01(self.seed, "corrupt", batch_index) >= self.p_corrupt
        ):
            return codes, actions, rewards, 0
        n_bad = max(1, int(round(n * self.corrupt_frac)))
        # deterministic victim choice: an independent hash per slot
        order = np.argsort(
            [_hash01(self.seed, "victim", batch_index, i) for i in range(n)]
        )
        victims = order[:n_bad]
        codes = np.array(codes, dtype=np.intp, copy=True)
        actions = np.array(actions, dtype=np.intp, copy=True)
        rewards = np.array(rewards, dtype=np.float64, copy=True)
        for slot, j in enumerate(victims):
            mode = slot % 3
            if mode == 0:
                codes[j] = -1 - codes[j]
            elif mode == 1:
                actions[j] = -1
            else:
                rewards[j] = np.nan
        return codes, actions, rewards, n_bad

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan({self.to_spec()!r})"


def active_plan() -> FaultPlan | None:
    """The process-wide plan from ``REPRO_FAULTS``, or ``None``.

    Re-read on every call (cheap: one ``os.environ`` lookup plus a
    cached parse) so tests can arm and disarm the knob freely.
    """
    spec = os.environ.get(FAULTS_ENV_VAR)
    if not spec:
        return None
    global _cached
    if _cached is None or _cached[0] != spec:
        _cached = (spec, FaultPlan.parse(spec))
    return _cached[1]


_cached: tuple[str, FaultPlan] | None = None
