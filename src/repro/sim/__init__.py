"""Fleet simulation engine: vectorized population stepping.

The paper's evaluation (§5) simulates *populations* of on-device
agents.  The reference implementation drives each agent through a
per-interaction Python loop (``_simulate_agent`` in
:mod:`repro.experiments.runner`); this package provides the scaled
equivalent — :class:`~repro.sim.fleet.FleetRunner` steps the whole
population per round on stacked numpy state
(:mod:`repro.sim.stacked`), turning ``O(n_agents)`` Python/numpy call
overhead per interaction into a handful of batched kernel calls per
round.

The sequential-vs-fleet contract
--------------------------------

The sequential loop **is the specification**; the fleet engine is an
optimization that must be observationally identical.  Results are
guaranteed *bit-identical* — same action sequences, same rewards, same
final policy states, same outbox reports and released histograms —
whenever:

1. every agent's policy has ``supports_fleet = True`` (the policy
   routes all float math through :mod:`repro.bandits.kernels`, whose
   einsum contractions accumulate identically with or without a
   batched leading axis — the reason the scalar policies avoid BLAS
   ``@``);
2. the population is homogeneous: one mode, one policy kind with
   shared hyperparameters, one codebook size when private;
3. randomness is per-agent: each agent's policy / participation /
   session generators are independent streams (the
   ``spawn_seeds`` tree), so stepping round-major instead of
   agent-major consumes every stream in the same within-agent order.

Condition 3 is why the engines can interleave work differently yet
agree exactly: no stream is shared across agents, and within one agent
the order select → reward → participation-offer per interaction is
preserved verbatim (the fleet calls the *same*
``LocalAgent.record_interaction`` the sequential path uses).

When any condition fails — heterogeneous policies, a policy without
fleet support (e.g. Thompson sampling, whose per-(row, arm) posterior
draws define its stream order) — ``engine="auto"`` callers fall back
to the sequential loop; ``engine="fleet"`` raises.

``tests/sim/`` enforces the contract with seeded equivalence suites
over every supported policy × encoder × mode combination, and
``tests/test_properties.py`` fuzzes it over random seeds.
"""

from .fleet import FleetResult, FleetRunner, fleet_supported
from .stacked import (
    StackedCodeLinUCB,
    StackedEpsilonGreedy,
    StackedLinUCB,
    StackedPolicies,
    StackedUCB1,
    policies_stackable,
    stack_policies,
)

__all__ = [
    "FleetRunner",
    "FleetResult",
    "fleet_supported",
    "StackedPolicies",
    "StackedLinUCB",
    "StackedEpsilonGreedy",
    "StackedCodeLinUCB",
    "StackedUCB1",
    "stack_policies",
    "policies_stackable",
]
