"""Fleet simulation engine: vectorized, sharded population stepping.

The paper's evaluation (§5) simulates *populations* of on-device
agents — including mixtures of configurations (warm/cold,
private/non-private, different policies).  The reference implementation
drives each agent through a per-interaction Python loop
(``_simulate_agent`` in :mod:`repro.experiments.runner`); this package
provides the scaled equivalent — :class:`~repro.sim.fleet.FleetRunner`
steps the whole population per round on stacked numpy state
(:mod:`repro.sim.stacked`), turning ``O(n_agents)`` Python/numpy call
overhead per interaction into a handful of batched kernel calls per
round.

The sequential-vs-fleet contract
--------------------------------

The sequential loop **is the specification**; the fleet engine is an
optimization that must be observationally identical.  Results are
guaranteed *bit-identical* — same action sequences, same rewards, same
final policy states, same outbox reports and released histograms —
whenever:

1. every agent's policy has ``supports_fleet = True`` (the policy
   routes all float math through :mod:`repro.bandits.kernels`, whose
   einsum contractions accumulate identically with or without a
   batched leading axis — the reason the scalar policies avoid BLAS
   ``@``) and therefore reports a non-``None``
   :meth:`~repro.bandits.base.BanditPolicy.fleet_key`;
2. randomness is per-agent: each agent's policy / participation /
   session generators are independent streams (the ``spawn_seeds``
   tree), so stepping round-major instead of agent-major consumes
   every stream in the same within-agent order.

Homogeneity is **not** a condition: heterogeneous populations are
partitioned into *shards* by :func:`~repro.sim.fleet.shard_key` —
(mode, private-context, codebook size, policy kind and
hyperparameters) — and each shard runs on its own stacked state.  The
combined run interleaves shards round-major (every shard performs
interaction ``t`` before any shard performs ``t + 1``); because
condition 2 makes agent order within a round unobservable, shard order
is too, and the mixed run stays bit-identical to the sequential
reference.  Policies whose selection *consumes* randomness join the
contract by defining their draw order — Thompson sampling draws
arm-major per selection, so :class:`~repro.sim.stacked.StackedThompson`
batches the O(d²) Cholesky/scoring math while drawing each agent's
posterior normals from that agent's own generator.

Per-round *session* calls additionally vanish for shards whose
sessions advertise a plan capability (class flags on
:class:`~repro.data.environment.UserSession`): ``has_reward_plan``
sessions (synthetic, stationary) pre-realize their reward noise, and
``has_trace_plan`` sessions (dataset replay: multilabel, Criteo)
pre-materialize their row walk into per-step context and
reward-table arrays — both by contract exact stand-ins for the
sequential calls (same values, same generator consumption, session
left in the same state), so the fast paths stay inside the
bit-identity guarantee.  A shard mixing plan-capable and plan-less
sessions falls back to per-round session stepping, still
bit-identical.

Traced plans take the **shared-row-table** form whenever every session
of a shard walks the same per-dataset
:class:`~repro.data.environment.TraceRowTable`
(``has_indexed_trace_plan``): the shard keeps one row-index walk per
agent and gathers contexts, rewards and plan-time encodings through
tables that exist once per dataset — traced-plan memory drops A-fold
and each distinct dataset row is encoded at most once per encoder.
``FleetRunner(plan_chunk_size=C)`` additionally materializes plans in
bounded horizon slices; both knobs preserve bit-identity (chunk
boundaries straddle participation windows through a short history
tail, and slice-by-slice planning is exact by the plan contract).

The *reporting* pipeline is columnar on the same plan-capable shards:
participation advances through
:class:`~repro.core.participation.StackedParticipation` (vectorized
window/budget masks; the Bernoulli coin and within-window index still
drawn from each agent's own generator in the scalar ``offer`` order),
and reports land in a struct-of-arrays
:class:`~repro.core.payload.ReportLog` instead of per-report objects —
codes gathered from the plan-time batch encodings, never re-encoded.
Agent outboxes hold lightweight markers that materialize into the
exact scalar report objects on access, while
:meth:`~repro.core.system.P2BSystem.collect` flows the columns
straight through ``Shuffler.process_arrays`` into
``ingest_arrays`` — the same released tuples, stats and audit as the
object path, with no payload object ever built on the fast path.

Because shards share no mutable state and never synchronize,
``FleetRunner(n_workers=k)`` runs each shard's whole horizon as one
concurrent task — on a thread pool, or in worker processes with
``worker_backend="process"`` — again without leaving the contract:
shard order is unobservable, so parallel results are identical to
serial ones.

Exactness tiers
---------------

Bit-identity is the default **contract tier** (``exactness="bit"``),
not the only one.  ``FleetRunner(exactness="fast")`` opts into a
memory-lean tier for the million-agent regime: policy kinds with a
fast stacker (currently ``code_linucb`` via
:class:`~repro.sim.stacked.StackedCodeLinUCBFast`) hold float32
sparse count/sum state — touched ``(agent, arm, code)`` cells only,
densifying per shard when occupancy crosses a threshold — and
curve-only callers can stream per-round sums through a
:class:`~repro.experiments.results.ResultSink` instead of
materializing ``(n_agents, T)`` result matrices.  The fast tier's
guarantee is *statistical* equivalence (same math on the same touched
cells up to float32 rounding, which can flip near-exact tie-breaks):
``tests/sim/test_exactness.py`` pins fast-vs-bit curves within
tolerance bands across seeds.  Kinds without a fast stacker run their
bit stacker unchanged, so ``"fast"`` degenerates to ``"bit"`` —
bitwise — for them.

When any condition fails — a policy without fleet support
(``RandomPolicy``, ``HybridLinUCB``) — ``engine="auto"`` callers fall
back to the sequential loop; ``engine="fleet"`` raises.

``tests/sim/`` enforces the contract with seeded equivalence suites
over every supported policy × encoder × mode combination plus mixed
populations (``test_sharding.py``), dataset-replay populations
(``test_replay_plans.py``) and parallel shard stepping
(``test_parallel.py``); ``tests/test_properties.py`` fuzzes it over
random seeds and random synthetic/replay population mixtures.
"""

from .checkpoint import (
    CHECKPOINT_VERSION,
    FleetCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from .faults import (
    FAULTS_ENV_VAR,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_plan,
)
from .fleet import (
    PLAN_FORMS,
    WORKER_BACKENDS,
    DroppedShard,
    FaultPolicy,
    FleetResult,
    FleetRunner,
    aggregate_plan_nbytes,
    fleet_supported,
    shard_indices,
    shard_key,
)
from .shm import (
    SHM_ENV_VAR,
    ShmArrayRef,
    ShmPool,
    leaked_segments,
    shm_enabled,
)
from .stacked import (
    EXACTNESS_TIERS,
    StackedCodeLinUCB,
    StackedCodeLinUCBFast,
    StackedEpsilonGreedy,
    StackedLinUCB,
    StackedLinUCBFast,
    StackedPolicies,
    StackedThompson,
    StackedThompsonFast,
    StackedUCB1,
    policies_stackable,
    stack_policies,
)

__all__ = [
    "FleetRunner",
    "FleetResult",
    "FaultPolicy",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "DroppedShard",
    "FleetCheckpoint",
    "save_checkpoint",
    "load_checkpoint",
    "CHECKPOINT_VERSION",
    "FAULTS_ENV_VAR",
    "active_plan",
    "fleet_supported",
    "shard_key",
    "shard_indices",
    "aggregate_plan_nbytes",
    "EXACTNESS_TIERS",
    "WORKER_BACKENDS",
    "PLAN_FORMS",
    "SHM_ENV_VAR",
    "ShmArrayRef",
    "ShmPool",
    "leaked_segments",
    "shm_enabled",
    "StackedPolicies",
    "StackedLinUCB",
    "StackedLinUCBFast",
    "StackedEpsilonGreedy",
    "StackedThompson",
    "StackedThompsonFast",
    "StackedCodeLinUCB",
    "StackedCodeLinUCBFast",
    "StackedUCB1",
    "stack_policies",
    "policies_stackable",
]
