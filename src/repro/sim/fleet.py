"""The vectorized fleet engine: simulate an agent population per round.

:class:`FleetRunner` drives ``n`` ``(LocalAgent, UserSession)`` pairs
round-major — every agent performs interaction ``t`` before any agent
performs ``t + 1`` — with the policy math executed on stacked arrays
(:mod:`repro.sim.stacked`).  Because every agent owns independent RNG
streams (policy, participation, session), round-major stepping consumes
each stream in exactly the order the sequential agent-major loop does,
so the two engines are interchangeable; ``tests/sim/`` pins the
equivalence bit-for-bit.

Heterogeneous populations run **sharded**: agents are partitioned by
:func:`shard_key` — (mode, private-context, codebook size, policy kind
and hyperparameters) — and each shard steps on its own stacked state.
Within one round the shards execute in first-appearance order, but
since no RNG stream is shared across agents, shard order (like agent
order) is unobservable: a mixed LinUCB + Thompson + epsilon-greedy
population, warm-private and cold side by side, produces bit-identical
actions, rewards, policy states and reports to the sequential loop.

What stays per-agent Python (all O(1) per agent per round):

* session calls (``next_context`` / ``reward``) — environments are
  arbitrary stateful objects with their own generators;
* randomness (tie-breaks, epsilon coins, posterior draws) — batching
  draws across agents would reorder streams;
* participation offers and outbox appends — routed through
  :meth:`~repro.core.agent.LocalAgent.record_interaction`, the same
  method the sequential path uses;
* context encoding on *cache miss* — encoders are deterministic (the
  ``eps_bar = 0`` premise), so re-encoding an unchanged context is pure
  waste; each shard memoizes per agent and only calls the scalar
  ``encode`` when the context actually changes.  Fixed-preference
  populations (the paper's synthetic benchmark) therefore encode once
  per agent total.

Everything O(d²)–O(k·d²) — scoring, Cholesky refreshes,
Sherman–Morrison updates — runs as stacked kernel calls, one set per
shard per round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.agent import LocalAgent
from ..core.config import AgentMode
from ..core.payload import EncodedReport, RawReport
from ..data.environment import StationaryRewardPlan, UserSession
from ..utils.exceptions import ConfigError
from ..utils.validation import check_positive_int
from .stacked import stack_policies

__all__ = [
    "FleetRunner",
    "FleetResult",
    "fleet_supported",
    "shard_key",
    "shard_indices",
]


def shard_key(agent: LocalAgent) -> tuple | None:
    """The stacking-compatibility fingerprint of one agent.

    Two agents share a stacked state if and only if their keys are
    equal: same mode, same acting representation, same codebook size
    (when private), and the same policy
    :meth:`~repro.bandits.base.BanditPolicy.fleet_key` (kind, shapes,
    hyperparameters).  ``None`` means the agent cannot run on the fleet
    engine at all — its policy has no fleet support, or it is
    warm-private without an encoder.
    """
    key = agent.policy.fleet_key()
    if key is None:
        return None
    if agent.mode == AgentMode.WARM_PRIVATE:
        if agent.encoder is None:
            return None
        return (agent.mode, agent.private_context, agent.encoder.n_codes, key)
    return (agent.mode, agent.private_context, None, key)


def fleet_supported(agents: Sequence[LocalAgent]) -> bool:
    """Whether this agent population can run on the fleet engine.

    Heterogeneity is no barrier — mixed policy kinds, hyperparameters,
    modes and codebook sizes shard into separate stacked states — so
    the only requirement is that *every* agent is individually
    stackable (:func:`shard_key` is not ``None``).
    """
    agents = list(agents)
    return bool(agents) and all(shard_key(a) is not None for a in agents)


def shard_indices(agents: Sequence[LocalAgent]) -> list[np.ndarray]:
    """Partition agent indices into stackable shards.

    Shards are keyed by :func:`shard_key` and ordered by first
    appearance; within a shard, agent order is preserved.  Raises
    :class:`~repro.utils.exceptions.ConfigError` when any agent is not
    fleet-capable.
    """
    groups: dict[tuple, list[int]] = {}
    for i, agent in enumerate(agents):
        key = shard_key(agent)
        if key is None:
            if agent.policy.fleet_key() is None:
                why = f"policy {type(agent.policy).__name__} has no fleet support"
            else:
                why = "it is warm-private but has no encoder"
            raise ConfigError(
                f"agent {agent.agent_id!r} (index {i}) is not fleet-capable: "
                f"{why} (run the sequential engine instead)"
            )
        groups.setdefault(key, []).append(i)
    return [np.asarray(idx, dtype=np.intp) for idx in groups.values()]


@dataclass(frozen=True)
class FleetResult:
    """Per-(agent, interaction) outcome matrices of one fleet run."""

    rewards: np.ndarray  #: realized rewards, shape (n_agents, T)
    actions: np.ndarray  #: chosen actions, shape (n_agents, T)
    expected: np.ndarray | None  #: expected-reward channel, or None if untracked
    expected_mask: np.ndarray  #: per-agent bool: row of ``expected`` is valid

    def measured(self) -> np.ndarray:
        """The evaluation matrix the experiment harness consumes.

        Row ``i`` is the expected-reward sequence when the environment
        provided ground truth for agent ``i``, otherwise the realized
        one — mirroring ``run_setting``'s per-agent fallback.
        """
        if self.expected is None:
            return self.rewards
        return np.where(self.expected_mask[:, None], self.expected, self.rewards)


class _Shard:
    """One stackable subpopulation with its own stacked state.

    Owns the per-shard context/encoding caches and (when every session
    in the shard pre-realizes its horizon) the stationary reward plan
    arrays.  ``step`` writes outcomes into the *global* result matrices
    at this shard's agent indices.
    """

    def __init__(
        self,
        indices: np.ndarray,
        agents: list[LocalAgent],
        sessions: list[UserSession],
    ) -> None:
        self.indices = indices
        self.agents = agents
        self.sessions = sessions
        self.n = len(agents)
        self.mode = agents[0].mode
        self.private_context = agents[0].private_context
        self.stacked = stack_policies([a.policy for a in agents])
        self._rows = np.arange(self.n)
        # acting-representation caches (warm-private only)
        self._cached_ctx: list[np.ndarray | None] = [None] * self.n
        self._cached_code = np.empty(self.n, dtype=np.intp)
        self._cached_rep: list[np.ndarray | None] = [None] * self.n
        # raw contexts, allocated on the first generic-path round
        self._X: np.ndarray | None = None
        self._plan_means: np.ndarray | None = None
        self._plan_noise: np.ndarray | None = None
        self._plan_acting: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    def prepare(self, n_interactions: int) -> None:
        """Pre-realize stationary sessions (the plan fast path).

        Override detection, not try/except: probing must not consume
        any session's stream on failure.  Plans collapse the per-round
        session loops into array gathers; the plan contract (pinned by
        ``tests/sim``) makes this exact, and pre-realizing one shard
        before another is unobservable because session streams are
        per-agent.
        """
        if any(
            type(s).plan_rewards is UserSession.plan_rewards for s in self.sessions
        ):
            return
        plans: list[StationaryRewardPlan] = [
            s.plan_rewards(n_interactions) for s in self.sessions
        ]
        self._X = np.stack([p.context for p in plans])
        self._plan_means = np.stack([p.mean_rewards for p in plans])  # (n, A)
        self._plan_noise = np.stack([p.noise for p in plans])  # (n, T)
        self._plan_acting = self._acting_representation(self._X, self._rows)

    @property
    def stationary(self) -> bool:
        return self._plan_means is not None

    # ------------------------------------------------------------------ #
    def step(
        self,
        t: int,
        rewards: np.ndarray,
        actions: np.ndarray,
        expected: np.ndarray | None,
        expected_ok: np.ndarray,
    ) -> None:
        """Run interaction ``t`` for every agent in this shard."""
        if self.stationary:
            acting = self._plan_acting
            X = self._X
        else:
            X = self._next_contexts()
            acting = self._refresh_acting(X)

        acts = self.stacked.select(acting)
        actions[self.indices, t] = acts

        if self.stationary:
            # StationaryRewardPlan.realize, vectorized across agents for
            # one step: mean[a] + z, clipped — the same elementwise ops
            # as session.reward (a test pins the plan to the sequential
            # reward stream)
            r = np.clip(self._plan_means[self._rows, acts] + self._plan_noise[:, t], 0.0, 1.0)
            rewards[self.indices, t] = r
            if expected is not None:
                expected[self.indices, t] = self._plan_means[self._rows, acts]
        else:
            r = np.empty(self.n, dtype=np.float64)
            for j in range(self.n):
                r[j] = self.sessions[j].reward(int(acts[j]))
                g = self.indices[j]
                if expected is not None and expected_ok[g]:
                    try:
                        expected[g, t] = self.sessions[j].expected_rewards()[acts[j]]
                    except NotImplementedError:
                        expected_ok[g] = False
            rewards[self.indices, t] = r

        self.stacked.update(acting, acts, r)

        # per-agent bookkeeping (reporting pipeline)
        for j in range(self.n):
            self.agents[j].record_interaction(X[j], int(acts[j]), float(r[j]))

    # ------------------------------------------------------------------ #
    def _next_contexts(self) -> np.ndarray:
        if self._X is None:
            first = self.sessions[0].next_context()
            self._X = np.empty((self.n, first.shape[0]), dtype=np.float64)
            self._X[0] = first
            for j in range(1, self.n):
                self._X[j] = self.sessions[j].next_context()
        else:
            for j in range(self.n):
                self._X[j] = self.sessions[j].next_context()
        return self._X

    def _refresh_acting(self, X: np.ndarray) -> np.ndarray:
        if self.mode != AgentMode.WARM_PRIVATE:
            return X
        stale = np.asarray(
            [
                j
                for j in range(self.n)
                if self._cached_ctx[j] is None
                or not np.array_equal(X[j], self._cached_ctx[j])
            ],
            dtype=np.intp,
        )
        return self._acting_representation(X, stale)

    def _acting_representation(self, X: np.ndarray, stale: np.ndarray) -> np.ndarray:
        """The representation the stacked policy consumes for contexts ``X``.

        ``stale`` lists shard-local agent indices whose cached encoding
        must be refreshed (all of them on the first call).  Encoders are
        deterministic — the ``eps_bar = 0`` premise — so serving a code
        from cache is exact, not approximate.
        """
        if self.mode != AgentMode.WARM_PRIVATE:
            return X
        for j in stale:
            j = int(j)
            self._cached_ctx[j] = X[j].copy()
            encoder = self.agents[j].encoder
            self._cached_code[j] = encoder.encode(X[j])
            if self.private_context == "centroid":
                self._cached_rep[j] = encoder.decode(int(self._cached_code[j]))
        if self.stacked.wants_codes:
            return self._cached_code
        if self.private_context == "centroid":
            return np.stack(self._cached_rep)
        return self.agents[0].encoder.one_hot_batch(self._cached_code)  # type: ignore[union-attr]


class FleetRunner:
    """Vectorized population simulator (see module docstring).

    Parameters
    ----------
    agents:
        Any population of fleet-capable agents.  Homogeneous
        populations run as a single shard (the PR-1 fast path);
        mixed policy kinds / hyperparameters / modes / codebook sizes
        shard automatically.
    sessions:
        One user session per agent, aligned by index.
    """

    def __init__(
        self, agents: Sequence[LocalAgent], sessions: Sequence[UserSession]
    ) -> None:
        self.agents = list(agents)
        self.sessions = list(sessions)
        if not self.agents:
            raise ConfigError("FleetRunner needs at least one agent")
        if len(self.agents) != len(self.sessions):
            raise ConfigError(
                f"agents ({len(self.agents)}) and sessions ({len(self.sessions)}) "
                "must align one-to-one"
            )
        # partition eagerly so unsupported populations fail at
        # construction, not mid-run
        self._shard_index_groups = shard_indices(self.agents)

    @property
    def n_shards(self) -> int:
        """Number of stacked states this population partitions into."""
        return len(self._shard_index_groups)

    # ------------------------------------------------------------------ #
    def run(self, n_interactions: int, *, track_expected: bool = False) -> FleetResult:
        """Run ``n_interactions`` rounds over the whole population.

        Side effects match the sequential loop exactly: policies learn
        (state is written back into each agent's policy object),
        participation budgets advance, and outboxes fill with the same
        reports carrying the same metadata.
        """
        n_interactions = check_positive_int(n_interactions, name="n_interactions")
        n = len(self.agents)

        shards = [
            _Shard(
                idx,
                [self.agents[i] for i in idx],
                [self.sessions[i] for i in idx],
            )
            for idx in self._shard_index_groups
        ]
        for shard in shards:
            shard.prepare(n_interactions)

        rewards = np.empty((n, n_interactions), dtype=np.float64)
        actions_mat = np.empty((n, n_interactions), dtype=np.intp)
        expected = np.empty((n, n_interactions), dtype=np.float64) if track_expected else None
        expected_ok = np.full(n, track_expected, dtype=bool)

        for t in range(n_interactions):
            for shard in shards:
                shard.step(t, rewards, actions_mat, expected, expected_ok)

        for shard in shards:
            shard.stacked.writeback()
        return FleetResult(
            rewards=rewards,
            actions=actions_mat,
            expected=expected,
            expected_mask=expected_ok,
        )

    # ------------------------------------------------------------------ #
    def drain_outboxes(self) -> list[EncodedReport | RawReport]:
        """Drain every agent's outbox, in agent order (the batched send).

        Equivalent to concatenating per-agent
        :meth:`~repro.core.agent.LocalAgent.drain_outbox` calls — same
        reports, same metadata, same order — which ``tests/sim`` pins
        through the shuffler.
        """
        reports: list[EncodedReport | RawReport] = []
        for agent in self.agents:
            reports.extend(agent.drain_outbox())
        return reports
