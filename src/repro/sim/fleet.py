"""The vectorized fleet engine: simulate an agent population per round.

:class:`FleetRunner` drives ``n`` ``(LocalAgent, UserSession)`` pairs
round-major — every agent performs interaction ``t`` before any agent
performs ``t + 1`` — with the policy math executed on stacked arrays
(:mod:`repro.sim.stacked`).  Because every agent owns independent RNG
streams (policy, participation, session), round-major stepping consumes
each stream in exactly the order the sequential agent-major loop does,
so the two engines are interchangeable; ``tests/sim/`` pins the
equivalence bit-for-bit.

What stays per-agent Python (all O(1) per agent per round):

* session calls (``next_context`` / ``reward``) — environments are
  arbitrary stateful objects with their own generators;
* randomness (tie-breaks, epsilon coins) — batching draws would
  reorder streams;
* participation offers and outbox appends — routed through
  :meth:`~repro.core.agent.LocalAgent.record_interaction`, the same
  method the sequential path uses;
* context encoding on *cache miss* — encoders are deterministic (the
  ``eps_bar = 0`` premise), so re-encoding an unchanged context is pure
  waste; the runner memoizes per agent and only calls the scalar
  ``encode`` when the context actually changes.  Fixed-preference
  populations (the paper's synthetic benchmark) therefore encode once
  per agent total.

Everything O(d²)–O(k·d²) — scoring, Sherman–Morrison updates — runs as
single stacked kernel calls per round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.agent import LocalAgent
from ..core.config import AgentMode
from ..core.payload import EncodedReport, RawReport
from ..data.environment import StationaryRewardPlan, UserSession
from ..utils.exceptions import ConfigError
from ..utils.validation import check_positive_int
from .stacked import policies_stackable, stack_policies

__all__ = ["FleetRunner", "FleetResult", "fleet_supported"]


def fleet_supported(agents: Sequence[LocalAgent]) -> bool:
    """Whether this agent population can run on the fleet engine."""
    agents = list(agents)
    if not agents:
        return False
    if len({a.mode for a in agents}) != 1:
        return False
    if len({a.private_context for a in agents}) != 1:
        return False
    if agents[0].mode == AgentMode.WARM_PRIVATE:
        if any(a.encoder is None for a in agents):
            return False
        if len({a.encoder.n_codes for a in agents}) != 1:
            return False
    return policies_stackable([a.policy for a in agents])


@dataclass(frozen=True)
class FleetResult:
    """Per-(agent, interaction) outcome matrices of one fleet run."""

    rewards: np.ndarray  #: realized rewards, shape (n_agents, T)
    actions: np.ndarray  #: chosen actions, shape (n_agents, T)
    expected: np.ndarray | None  #: expected-reward channel, or None if untracked
    expected_mask: np.ndarray  #: per-agent bool: row of ``expected`` is valid

    def measured(self) -> np.ndarray:
        """The evaluation matrix the experiment harness consumes.

        Row ``i`` is the expected-reward sequence when the environment
        provided ground truth for agent ``i``, otherwise the realized
        one — mirroring ``run_setting``'s per-agent fallback.
        """
        if self.expected is None:
            return self.rewards
        return np.where(self.expected_mask[:, None], self.expected, self.rewards)


class FleetRunner:
    """Vectorized population simulator (see module docstring).

    Parameters
    ----------
    agents:
        A homogeneous population (same mode, same policy kind and
        hyperparameters; same codebook size when private).
    sessions:
        One user session per agent, aligned by index.
    """

    def __init__(
        self, agents: Sequence[LocalAgent], sessions: Sequence[UserSession]
    ) -> None:
        self.agents = list(agents)
        self.sessions = list(sessions)
        if not self.agents:
            raise ConfigError("FleetRunner needs at least one agent")
        if len(self.agents) != len(self.sessions):
            raise ConfigError(
                f"agents ({len(self.agents)}) and sessions ({len(self.sessions)}) "
                "must align one-to-one"
            )
        if not fleet_supported(self.agents):
            raise ConfigError(
                "population not fleet-capable: agents must share mode and "
                "private_context, and policies must be homogeneous with "
                "supports_fleet=True (run the sequential engine instead)"
            )
        self.mode = self.agents[0].mode
        self.private_context = self.agents[0].private_context

    # ------------------------------------------------------------------ #
    def run(self, n_interactions: int, *, track_expected: bool = False) -> FleetResult:
        """Run ``n_interactions`` rounds over the whole population.

        Side effects match the sequential loop exactly: policies learn
        (state is written back into each agent's policy object),
        participation budgets advance, and outboxes fill with the same
        reports carrying the same metadata.
        """
        n_interactions = check_positive_int(n_interactions, name="n_interactions")
        agents, sessions = self.agents, self.sessions
        n = len(agents)
        private = self.mode == AgentMode.WARM_PRIVATE
        stacked = stack_policies([a.policy for a in agents])

        rewards = np.empty((n, n_interactions), dtype=np.float64)
        actions_mat = np.empty((n, n_interactions), dtype=np.intp)
        expected = np.empty((n, n_interactions), dtype=np.float64) if track_expected else None
        expected_ok = np.full(n, track_expected, dtype=bool)

        # Stationary fast path: when every session pre-realizes its
        # horizon (fixed context, pre-drawn noise — see
        # StationaryRewardPlan), the per-round session loops collapse
        # into array gathers.  Override detection, not try/except:
        # probing must not consume any session's stream on failure.
        plans: list[StationaryRewardPlan] | None = None
        if all(
            type(s).plan_rewards is not UserSession.plan_rewards for s in sessions
        ):
            plans = [s.plan_rewards(n_interactions) for s in sessions]

        if plans is not None:
            X = np.stack([p.context for p in plans])
            mean_matrix = np.stack([p.mean_rewards for p in plans])  # (n, A)
            noise = np.stack([p.noise for p in plans])  # (n, T)
            acting = self._acting_representation(stacked, X, np.arange(n))
            idx = np.arange(n)
            for t in range(n_interactions):
                acts = stacked.select(acting)
                actions_mat[:, t] = acts
                # StationaryRewardPlan.realize, vectorized across agents
                # for one step: mean[a] + z, clipped — the same
                # elementwise ops as session.reward (a test pins the
                # plan to the sequential reward stream)
                rewards[:, t] = np.clip(mean_matrix[idx, acts] + noise[:, t], 0.0, 1.0)
                if expected is not None:
                    expected[:, t] = mean_matrix[idx, acts]
                stacked.update(acting, acts, rewards[:, t])
                for i in range(n):
                    agents[i].record_interaction(X[i], int(acts[i]), float(rewards[i, t]))
            stacked.writeback()
            return FleetResult(
                rewards=rewards,
                actions=actions_mat,
                expected=expected,
                expected_mask=expected_ok,
            )

        # generic path: arbitrary stateful sessions, stepped per round
        X = None  # raw contexts, allocated on first round
        self._cached_ctx = [None] * n
        self._cached_code = np.empty(n, dtype=np.intp)
        self._cached_rep = [None] * n  # centroid representations

        for t in range(n_interactions):
            # -- contexts ------------------------------------------------ #
            if X is None:
                first = sessions[0].next_context()
                X = np.empty((n, first.shape[0]), dtype=np.float64)
                X[0] = first
                for i in range(1, n):
                    X[i] = sessions[i].next_context()
            else:
                for i in range(n):
                    X[i] = sessions[i].next_context()

            # -- acting representation ---------------------------------- #
            if private:
                stale = [
                    i
                    for i in range(n)
                    if self._cached_ctx[i] is None
                    or not np.array_equal(X[i], self._cached_ctx[i])
                ]
                acting = self._acting_representation(stacked, X, np.asarray(stale, dtype=np.intp))
            else:
                acting = X

            # -- select / reward / update -------------------------------- #
            acts = stacked.select(acting)
            actions_mat[:, t] = acts
            for i in range(n):
                rewards[i, t] = sessions[i].reward(int(acts[i]))
                if expected is not None and expected_ok[i]:
                    try:
                        expected[i, t] = sessions[i].expected_rewards()[acts[i]]
                    except NotImplementedError:
                        expected_ok[i] = False
            stacked.update(acting, acts, rewards[:, t])

            # -- per-agent bookkeeping (reporting pipeline) -------------- #
            for i in range(n):
                agents[i].record_interaction(X[i], int(acts[i]), float(rewards[i, t]))

        stacked.writeback()
        return FleetResult(
            rewards=rewards,
            actions=actions_mat,
            expected=expected,
            expected_mask=expected_ok,
        )

    # ------------------------------------------------------------------ #
    def _acting_representation(self, stacked, X: np.ndarray, stale: np.ndarray):
        """The representation the stacked policy consumes for contexts ``X``.

        ``stale`` lists agent indices whose cached encoding must be
        refreshed (all of them on the first call).  Encoders are
        deterministic — the ``eps_bar = 0`` premise — so serving a code
        from cache is exact, not approximate.
        """
        if self.mode != AgentMode.WARM_PRIVATE:
            return X
        if not hasattr(self, "_cached_ctx"):
            self._cached_ctx = [None] * len(self.agents)
            self._cached_code = np.empty(len(self.agents), dtype=np.intp)
            self._cached_rep = [None] * len(self.agents)
        for i in stale:
            i = int(i)
            self._cached_ctx[i] = X[i].copy()
            encoder = self.agents[i].encoder
            self._cached_code[i] = encoder.encode(X[i])
            if self.private_context == "centroid":
                self._cached_rep[i] = encoder.decode(int(self._cached_code[i]))
        if stacked.wants_codes:
            return self._cached_code
        if self.private_context == "centroid":
            return np.stack(self._cached_rep)
        return self.agents[0].encoder.one_hot_batch(self._cached_code)  # type: ignore[union-attr]

    # ------------------------------------------------------------------ #
    def drain_outboxes(self) -> list[EncodedReport | RawReport]:
        """Drain every agent's outbox, in agent order (the batched send).

        Equivalent to concatenating per-agent
        :meth:`~repro.core.agent.LocalAgent.drain_outbox` calls — same
        reports, same metadata, same order — which ``tests/sim`` pins
        through the shuffler.
        """
        reports: list[EncodedReport | RawReport] = []
        for agent in self.agents:
            reports.extend(agent.drain_outbox())
        return reports
