"""The vectorized fleet engine: simulate an agent population per round.

:class:`FleetRunner` drives ``n`` ``(LocalAgent, UserSession)`` pairs
round-major — every agent performs interaction ``t`` before any agent
performs ``t + 1`` — with the policy math executed on stacked arrays
(:mod:`repro.sim.stacked`).  Because every agent owns independent RNG
streams (policy, participation, session), round-major stepping consumes
each stream in exactly the order the sequential agent-major loop does,
so the two engines are interchangeable; ``tests/sim/`` pins the
equivalence bit-for-bit.

Heterogeneous populations run **sharded**: agents are partitioned by
:func:`shard_key` — (mode, private-context, codebook size, policy kind
and hyperparameters) — and each shard steps on its own stacked state.
Within one round the shards execute in first-appearance order, but
since no RNG stream is shared across agents, shard order (like agent
order) is unobservable: a mixed LinUCB + Thompson + epsilon-greedy
population, warm-private and cold side by side, produces bit-identical
actions, rewards, policy states and reports to the sequential loop.

Plan fast paths
---------------

Per-round session calls vanish entirely for shards whose sessions can
pre-materialize their horizon (capability flags on
:class:`~repro.data.environment.UserSession`):

* ``has_reward_plan`` — stationary sessions (the synthetic benchmark)
  pre-realize reward noise (:class:`StationaryRewardPlan`); rewards
  become one gather + clip per round;
* ``has_trace_plan`` — dataset-replay sessions (multilabel, Criteo)
  pre-materialize their row walk (:class:`TracePlan`); per-step
  contexts and per-action reward tables become array gathers;
* ``has_indexed_trace_plan`` — replay sessions whose dataset exposes a
  shared :class:`~repro.data.environment.TraceRowTable` take the
  **shared-row-table** form when every session of the shard walks the
  *same* table: the shard holds one ``(n, T)`` row-index walk and
  gathers contexts, rewards, expected rewards — and, warm-private,
  codes and centroid representations — through per-dataset tables that
  exist once, not once per agent.  Traced-plan memory drops A-fold and
  each distinct dataset row is encoded at most once per encoder,
  however many agents and steps visit it.  ``plan_form="dense"``
  forces the per-agent form (the memory bench compares the two);
  ``plan_form="indexed"`` insists and raises when unavailable.

A shard mixing plan-capable and plan-less sessions falls back to the
generic per-round session loop — still bit-identical, just slower.

Chunked horizons (``plan_chunk_size``) bound the plan materialization:
instead of planning all ``T`` steps up front, a shard re-plans its
sessions every ``C`` steps — exact by the plan contract (planning a
horizon in consecutive slices consumes session streams identically to
one full plan) — so dense traced-plan memory is ``O(n x C)`` instead
of ``O(n x T)``.  Chunk boundaries are invisible to everything else:
participation windows straddle them through a short history tail (a
report may sample an interaction up to ``window - 1`` steps back, so
dense shards retain that many trailing steps of context/codes), the
columnar report gathers and ``finish``'s buffer rebuild read through
the same tail, and ``plan_chunk_size >= T`` (or ``None``) degenerates
to exactly the unchunked path — one chunk, no tail.  Indexed shards
need no tail at all: the full row walk plus the shared tables
regenerate any past step.

What stays per-agent Python (all O(1) per agent per round):

* session calls (``next_context`` / ``reward``) on *unplanned* shards —
  environments are arbitrary stateful objects with their own
  generators;
* randomness (tie-breaks, epsilon coins, posterior draws) — batching
  draws across agents would reorder streams;
* participation offers and outbox appends on *unplanned* shards —
  routed through :meth:`~repro.core.agent.LocalAgent.record_interaction`,
  the same method the sequential path uses.  Plan-capable shards
  instead record **columnar**: window/budget masks advance through
  :class:`~repro.core.participation.StackedParticipation` (only the
  coin and within-window draws stay per-agent, from each agent's own
  stream), and report payloads are gathered — codes from the plan-time
  batch encodings, actions/rewards from the result matrices — into a
  per-shard :class:`~repro.core.payload.ReportLog`; agent outboxes
  reference their rows and materialize objects only if the object API
  is touched;
* context encoding on *cache miss* — encoders are deterministic (the
  ``eps_bar = 0`` premise), so re-encoding an unchanged context is pure
  waste; each shard memoizes per agent and only calls the scalar
  ``encode`` when the context actually changes.  Fixed-preference
  populations (the paper's synthetic benchmark) therefore encode once
  per agent total — and *traced* shards skip per-round encoding
  entirely by batch-encoding the whole horizon at plan time
  (:meth:`Encoder.encode_batch` is row-exact by contract).

Everything O(d²)–O(k·d²) — scoring, Cholesky refreshes,
Sherman–Morrison updates — runs as stacked kernel calls, one set per
shard per round.

Parallel shard stepping
-----------------------

Shards share no mutable state — disjoint agents, disjoint result rows,
per-agent RNG/session/outbox — and they never synchronize: the
round-major interleaving across shards is purely cosmetic, because
agent streams are per-agent.  ``FleetRunner(..., n_workers=k)``
therefore runs each shard's *entire horizon* as one thread-pool task
(no per-round barrier or submit overhead; the einsum kernels release
the GIL, so compute-bound shards overlap); results are identical to
serial stepping because nothing observable depends on shard order.
``worker_backend="process"`` is the escape hatch for populations whose
per-agent Python dominates: the same whole-horizon tasks run in worker
processes instead, and the mutated agent/session state is adopted back
into the caller's objects — see :func:`_run_shard_remote` for the
(documented) identity caveats.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.agent import LocalAgent
from ..core.config import AgentMode
from ..core.participation import StackedParticipation
from ..core.payload import EncodedReport, RawReport, ReportLog
from ..data.environment import (
    StationaryRewardPlan,
    TracePlan,
    TraceRowTable,
    UserSession,
)
from ..utils.exceptions import CheckpointError, ConfigError, WorkerError
from ..utils.validation import check_positive_int
from .faults import FaultPlan, active_plan
from .stacked import EXACTNESS_TIERS, stack_policies

__all__ = [
    "FleetRunner",
    "FleetResult",
    "FaultPolicy",
    "DroppedShard",
    "fleet_supported",
    "shard_key",
    "shard_indices",
    "aggregate_plan_nbytes",
    "WORKER_BACKENDS",
    "PLAN_FORMS",
    "EXACTNESS_TIERS",
]

#: recognized shard-parallelism backends: ``thread`` steps shards of
#: each round on a thread pool (GIL-releasing kernels, zero copy),
#: ``process`` runs each shard's whole horizon in a worker process
#: (serialization-heavy escape hatch for Python-bound populations).
WORKER_BACKENDS = ("thread", "process")

#: recognized traced-plan forms: ``auto`` uses the shared-row-table
#: ("indexed") form whenever every session of a shard walks the same
#: :class:`~repro.data.environment.TraceRowTable` and falls back to
#: per-agent ("dense") trace tables otherwise; ``dense`` forces the
#: per-agent form; ``indexed`` insists on the shared form and raises
#: when a shard cannot take it.  All forms are bit-identical.
PLAN_FORMS = ("auto", "indexed", "dense")


@dataclass(frozen=True)
class FaultPolicy:
    """How the fleet supervises failing shard work.

    When a shard's horizon raises (or its worker process dies), the
    supervisor restores the shard's agents and sessions from the
    snapshot taken before the attempt and replays the whole horizon.
    Because the snapshot round-trips every RNG stream bit-exactly and
    shard horizons are deterministic given that state, a successful
    retry is bitwise indistinguishable from a run that never failed.

    Parameters
    ----------
    max_retries:
        How many times a failed shard is retried before the policy's
        ``on_exhausted`` behavior kicks in (default 2; ``0`` =
        fail-fast with supervision bookkeeping but no retries).
    backoff:
        Base seconds slept before retry ``k`` — the actual sleep is
        ``backoff * 2**k`` scaled by deterministic jitter (default
        0.05; ``0.0`` disables sleeping, which tests use).
    jitter:
        Jitter amplitude in ``[0, 1]``: retry ``k`` sleeps its
        exponential base times ``1 + jitter * frac(k * φ)`` (golden-
        ratio decorrelation — deterministic, so replays are exact,
        but successive retries never synchronize).
    on_exhausted:
        ``"raise"`` (default) raises
        :class:`~repro.utils.exceptions.WorkerError` after the last
        retry, with the shard's agents restored to their last good
        state; ``"skip_shard"`` degrades instead — the shard's result
        rows are filled with ``NaN`` rewards / ``-1`` actions, its
        ``expected_mask`` entries cleared, and a :class:`DroppedShard`
        recorded in ``FleetResult.dropped``.
    """

    max_retries: int = 2
    backoff: float = 0.05
    jitter: float = 0.5
    on_exhausted: str = "raise"

    def __post_init__(self) -> None:
        if not isinstance(self.max_retries, (int, np.integer)) or isinstance(
            self.max_retries, bool
        ) or self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be a non-negative int, got {self.max_retries!r}"
            )
        if not self.backoff >= 0.0:
            raise ConfigError(f"backoff must be >= 0, got {self.backoff!r}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(f"jitter must be in [0, 1], got {self.jitter!r}")
        if self.on_exhausted not in ("raise", "skip_shard"):
            raise ConfigError(
                "on_exhausted must be 'raise' or 'skip_shard', "
                f"got {self.on_exhausted!r}"
            )

    def sleep_for(self, attempt: int) -> float:
        """Seconds to back off before re-running attempt ``attempt + 1``."""
        base = self.backoff * (2.0**attempt)
        return base * (1.0 + self.jitter * ((attempt * 0.6180339887498949) % 1.0))


@dataclass(frozen=True)
class DroppedShard:
    """One shard degraded out of a run (``on_exhausted="skip_shard"``).

    Carried in ``FleetResult.dropped`` so callers can see exactly which
    agents have no results this run: their result rows hold ``NaN``
    rewards and ``-1`` actions, and their ``expected_mask`` entries are
    ``False``.  The shard's agents were restored to their state before
    the run, so a later run (or a fixed deployment) continues cleanly.
    """

    shard: int  #: execution index of the dropped shard within the run
    n_agents: int  #: how many agents lost this horizon
    agent_ids: tuple  #: their ``agent_id`` strings
    attempts: int  #: attempts made (1 + max_retries)
    error: str  #: ``TypeName: message`` of the last failure


def shard_key(agent: LocalAgent) -> tuple | None:
    """The stacking-compatibility fingerprint of one agent.

    Two agents share a stacked state if and only if their keys are
    equal: same mode, same acting representation, same codebook size
    (when private), and the same policy
    :meth:`~repro.bandits.base.BanditPolicy.fleet_key` (kind, shapes,
    hyperparameters).  ``None`` means the agent cannot run on the fleet
    engine at all — its policy has no fleet support, or it is
    warm-private without an encoder.
    """
    key = agent.policy.fleet_key()
    if key is None:
        return None
    if agent.mode == AgentMode.WARM_PRIVATE:
        if agent.encoder is None:
            return None
        return (agent.mode, agent.private_context, agent.encoder.n_codes, key)
    return (agent.mode, agent.private_context, None, key)


def fleet_supported(agents: Sequence[LocalAgent]) -> bool:
    """Whether this agent population can run on the fleet engine.

    Heterogeneity is no barrier — mixed policy kinds, hyperparameters,
    modes and codebook sizes shard into separate stacked states — so
    the only requirement is that *every* agent is individually
    stackable (:func:`shard_key` is not ``None``).
    """
    agents = list(agents)
    return bool(agents) and all(shard_key(a) is not None for a in agents)


def _checked_shard_key(agent: LocalAgent, i: int) -> tuple:
    """:func:`shard_key`, raising the standard error when not fleet-capable."""
    key = shard_key(agent)
    if key is None:
        if agent.policy.fleet_key() is None:
            why = f"policy {type(agent.policy).__name__} has no fleet support"
        else:
            why = "it is warm-private but has no encoder"
        raise ConfigError(
            f"agent {agent.agent_id!r} (index {i}) is not fleet-capable: "
            f"{why} (run the sequential engine instead)"
        )
    return key


def shard_indices(agents: Sequence[LocalAgent]) -> list[np.ndarray]:
    """Partition agent indices into stackable shards.

    Shards are keyed by :func:`shard_key` and ordered by first
    appearance; within a shard, agent order is preserved.  Raises
    :class:`~repro.utils.exceptions.ConfigError` when any agent is not
    fleet-capable.
    """
    groups: dict[tuple, list[int]] = {}
    for i, agent in enumerate(agents):
        groups.setdefault(_checked_shard_key(agent, i), []).append(i)
    return [np.asarray(idx, dtype=np.intp) for idx in groups.values()]


@dataclass(frozen=True)
class FleetResult:
    """Per-(agent, interaction) outcome matrices of one fleet run.

    ``dropped`` is non-empty only for supervised runs that degraded
    shards out (``FaultPolicy(on_exhausted="skip_shard")``); those
    agents' rows hold ``NaN`` rewards / ``-1`` actions and their
    ``expected_mask`` entries are ``False``.
    """

    rewards: np.ndarray  #: realized rewards, shape (n_agents, T)
    actions: np.ndarray  #: chosen actions, shape (n_agents, T)
    expected: np.ndarray | None  #: expected-reward channel, or None if untracked
    expected_mask: np.ndarray  #: per-agent bool: row of ``expected`` is valid
    dropped: tuple = ()  #: one :class:`DroppedShard` per degraded-out shard

    def measured(self) -> np.ndarray:
        """The evaluation matrix the experiment harness consumes.

        Row ``i`` is the expected-reward sequence when the environment
        provided ground truth for agent ``i``, otherwise the realized
        one — mirroring ``run_setting``'s per-agent fallback.
        """
        if self.expected is None:
            return self.rewards
        return np.where(self.expected_mask[:, None], self.expected, self.rewards)


class _Shard:
    """One stackable subpopulation with its own stacked state.

    Owns the per-shard context/encoding caches and — when every session
    in the shard advertises a plan capability — the plan
    materialization: stationary reward plans, per-agent replay traces
    ("dense"), or a shared-row-table walk ("indexed").  Plans
    materialize in horizon chunks of ``plan_chunk_size`` steps (the
    whole horizon when ``None``).  ``step`` writes outcomes into the
    *global* result matrices at this shard's agent indices.
    """

    def __init__(
        self,
        indices: np.ndarray,
        agents: list[LocalAgent],
        sessions: list[UserSession],
        *,
        plan_chunk_size: int | None = None,
        plan_form: str = "auto",
        exactness: str = "bit",
        kernel_block_size: int | None = None,
    ) -> None:
        self.indices = indices
        self.agents = agents
        self.sessions = sessions
        self.n = len(agents)
        self.mode = agents[0].mode
        self.private_context = agents[0].private_context
        self.stacked = stack_policies(
            [a.policy for a in agents],
            exactness=exactness,
            kernel_block_size=kernel_block_size,
        )
        self._rows = np.arange(self.n)
        self._plan_chunk_size = plan_chunk_size
        self._plan_form = plan_form
        # acting-representation caches (warm-private only) — persist
        # across runs: encoders are deterministic, and _refresh_acting
        # validates each entry against the live context
        self._cached_ctx: list[np.ndarray | None] = [None] * self.n
        self._cached_code = np.empty(self.n, dtype=np.intp)
        self._cached_rep: list[np.ndarray | None] = [None] * self.n
        # deterministic encoder-group caches (persist across runs)
        self._enc_groups: list[np.ndarray] | None = None
        self._agent_group: np.ndarray | None = None
        # shared per-row encoding tables (persist while the row table
        # is the same object — each dataset row encoded at most once
        # per encoder across a persistent shard's whole lifetime)
        self._row_codes: np.ndarray | None = None  # (groups, n_rows) intp
        self._row_reps: np.ndarray | None = None  # (groups, n_rows, d)
        self._row_encoded: np.ndarray | None = None  # (groups, n_rows) bool
        self._row_codes_table: int | None = None  # id() of the table they cover
        # raw contexts, allocated on the first generic-path round
        self._X: np.ndarray | None = None
        # armed fault injection (chaos harness): set per attempt by the
        # supervisor via arm_faults; deliberately NOT cleared by
        # _reset_run_state — arming outlives prepare()
        self._faults: FaultPlan | None = None
        self._fault_shard = 0
        self._fault_attempt = 0
        self._fault_in_worker = False
        self._reset_run_state()

    def _reset_run_state(self) -> None:
        """Clear every per-run field (a persistent shard runs many times).

        Deterministic caches — stacked policy state, acting-encoding
        caches, encoder groups, shared per-row code tables — survive;
        plan materializations, chunk cursors, history tails and the
        columnar-recording state are strictly per-run and reset here
        (``prepare`` calls this first, so a reused shard can never see
        a previous run's plan path or recording buffers).
        """
        # when streaming into a ResultSink the result matrices are a
        # ring of this many columns (covering every lookback the
        # reporting pipeline performs); None = full-horizon matrices
        self._colmod: int | None = None
        # which plan fast path this shard runs on (None = generic loop)
        self._plan_path: str | None = None
        self._track_expected = False
        # chunk state: plan arrays cover global steps
        # [_chunk_start, _chunk_start + _chunk_len)
        self._chunk = 0
        self._chunk_start = 0
        self._chunk_len = 0
        # stationary-plan arrays (has_reward_plan shards)
        self._plan_means: np.ndarray | None = None
        self._plan_noise: np.ndarray | None = None
        self._plan_acting: np.ndarray | None = None
        # whether any session's stationarity expires mid-horizon
        # (drifting sessions): chunks then re-gather means/contexts
        self._plan_limited = False
        # dense trace-plan arrays (per-agent, chunk-local)
        self._trace_ctx: np.ndarray | None = None
        self._trace_rewards: np.ndarray | None = None
        self._trace_expected: np.ndarray | None = None
        self._trace_expected_ok: np.ndarray | None = None
        self._trace_codes: np.ndarray | None = None
        self._trace_reps: np.ndarray | None = None
        self._trace_expected_is_rewards = False
        # shared-row-table state (indexed shards): the full-horizon row
        # walk (the per-dataset code tables persist across runs)
        self._row_table: TraceRowTable | None = None
        self._trace_rows: np.ndarray | None = None  # (n, T) intp
        # history tail (dense traced chunked shards): the last
        # ``max(window) - 1`` steps of context/codes before the current
        # chunk, for report gathers and buffer rebuilds that straddle a
        # chunk boundary
        self._hist_len = 0
        self._hist_ctx: np.ndarray | None = None
        self._hist_codes: np.ndarray | None = None
        # columnar reporting state (plan-capable shards only)
        self._batch_recording = False
        self._horizon = 0
        self._base_inter: np.ndarray | None = None
        self._reward_acc: np.ndarray | None = None
        self._part: StackedParticipation | None = None
        self._log: ReportLog | None = None
        self._pre_buffers: list[list] | None = None

    def arm_faults(
        self,
        plan: FaultPlan | None,
        shard_index: int = 0,
        attempt: int = 0,
        *,
        in_worker: bool = False,
    ) -> None:
        """Arm (or, with ``None``, disarm) deterministic fault injection.

        While armed, every :meth:`step` first asks ``plan`` whether a
        fault fires at ``(shard_index, t, attempt)`` — the supervisor
        re-arms with the new attempt number on each retry, so a fault
        scheduled for attempt 0 does not re-fire on the replay.
        ``in_worker`` marks process-pool execution, where ``crash``
        faults hard-kill the interpreter instead of raising.
        """
        self._faults = plan
        self._fault_shard = int(shard_index)
        self._fault_attempt = int(attempt)
        self._fault_in_worker = bool(in_worker)

    # ------------------------------------------------------------------ #
    def prepare(
        self,
        n_interactions: int,
        *,
        track_expected: bool = False,
        result_window: int | None = None,
    ) -> None:
        """Pick the plan fast path and materialize its first chunk.

        Capability *flags* decide the path (never method-identity
        probing, which silently kicked plan-inheriting subclasses off
        the fast path, and never try/except, which could consume a
        session's stream on failure).  Plans collapse the per-round
        session loops into array gathers; the plan contract (pinned by
        ``tests/sim``) makes this exact, and pre-realizing one shard
        before another is unobservable because session streams are
        per-agent.  Shards mixing plan-capable and plan-less sessions
        take the generic per-round path.
        """
        self._reset_run_state()
        self._colmod = result_window
        self._horizon = n_interactions
        self._track_expected = track_expected
        if all(s.has_reward_plan for s in self.sessions):
            path = "stationary"
            # drifting sessions advertise a finite stationarity horizon;
            # chunks then stop at every drift boundary and re-gather the
            # per-chunk contexts/means (plan_horizon_limit is pure — it
            # consumes no randomness, so probing it is free)
            self._plan_limited = any(
                s.plan_horizon_limit() is not None for s in self.sessions
            )
        elif all(s.has_trace_plan for s in self.sessions):
            path = self._pick_trace_form()
        else:
            path = None
        if path in (None, "stationary") and self._plan_form == "indexed":
            raise ConfigError(
                "plan_form='indexed' requested but a shard's sessions have no "
                "trace plans to share (plan-less or stationary sessions); use "
                "plan_form='auto'"
            )
        if path is None:
            return
        self._plan_path = path
        self._chunk = (
            n_interactions
            if self._plan_chunk_size is None
            else min(self._plan_chunk_size, n_interactions)
        )
        if path == "indexed":
            # the per-agent half of the shared-row-table form: one row
            # index per step — everything else lives in the shared
            # per-dataset tables
            self._trace_rows = np.empty((self.n, n_interactions), dtype=np.intp)
            self._init_row_encodings()
        if not (path == "stationary" and self._plan_limited):
            # drifting stationary shards keep the scalar
            # record_interaction path: the columnar payload gather
            # assumes one fixed context/code per agent, which drift
            # breaks at epoch boundaries — recording per step with the
            # current chunk's context is exact (within a chunk the
            # context is constant by construction)
            self._init_batch_recording(n_interactions)
        self._init_history()
        self._materialize_chunk(0)

    def _pick_trace_form(self) -> str:
        """Shared-row-table ("indexed") or per-agent ("dense") traces.

        The shared form applies when every session advertises
        ``has_indexed_trace_plan`` *and* they all walk the same
        :class:`TraceRowTable` (sessions over one dataset share the
        table by identity; probing it consumes no randomness).  Mixed
        datasets within one shard fall back to dense per-agent tables —
        bit-identical either way.  ``plan_form`` forces the choice.
        """
        if self._plan_form == "dense":
            return "dense"
        if all(s.has_indexed_trace_plan for s in self.sessions):
            tables = [s.trace_row_table() for s in self.sessions]
            if all(t is tables[0] for t in tables):
                self._row_table = tables[0]
                return "indexed"
            why = "its sessions walk different datasets (no single row table to share)"
        else:
            why = "not every session has a shared-row-table plan"
        if self._plan_form == "indexed":
            raise ConfigError(f"plan_form='indexed' requested but {why}")
        return "dense"

    def _encoder_groups(self) -> list[np.ndarray]:
        """Shard-local agent indices grouped by encoder object (cached).

        Shards only guarantee equal codebook *size*, so batch encodings
        group agents by the encoder they actually hold; both trace
        forms — and every chunk — reuse this one grouping.
        """
        if self._enc_groups is None:
            groups: dict[int, list[int]] = {}
            for j in range(self.n):
                groups.setdefault(id(self.agents[j].encoder), []).append(j)
            self._enc_groups = [np.asarray(m, dtype=np.intp) for m in groups.values()]
        return self._enc_groups

    def _init_row_encodings(self) -> None:
        """Allocate the shared per-row code tables (warm-private only).

        Each encoder group owns one ``(n_rows,)`` code table (plus a
        centroid table when acting on centroids) filled lazily by
        :meth:`_encode_new_rows` as chunks visit rows.
        """
        if self.mode != AgentMode.WARM_PRIVATE:
            return
        if (
            self._row_codes is not None
            and self._row_codes_table == id(self._row_table)
        ):
            return  # persistent reuse: rows already encoded stay encoded
        groups = self._encoder_groups()
        self._agent_group = np.empty(self.n, dtype=np.intp)
        for g, members in enumerate(groups):
            self._agent_group[members] = g
        shape = (len(groups), self._row_table.n_rows)
        self._row_codes = np.zeros(shape, dtype=np.intp)
        self._row_encoded = np.zeros(shape, dtype=bool)
        self._row_codes_table = id(self._row_table)
        if self.private_context == "centroid":
            d = self._row_table.contexts.shape[1]
            self._row_reps = np.zeros((*shape, d), dtype=np.float64)

    def _init_history(self) -> None:
        """Size the cross-chunk history tail (dense chunked shards only).

        A report samples an interaction at most ``window - 1`` steps
        back, and ``finish`` rebuilds at most ``window - 1`` buffered
        items (a window that never fills holds at most that many
        in-run steps), so retaining ``max(window) - 1`` trailing steps
        of context/codes bridges every chunk boundary.  Indexed shards
        regenerate any step from the full row walk plus the shared
        tables; stationary contexts never change; cold shards never
        report — none of them need a tail.
        """
        self._hist_len = 0
        if self._plan_path != "dense" or self._chunk >= self._horizon:
            return
        if self._part is None:
            return
        self._hist_len = int(self._part.window.max()) - 1

    def _materialize_chunk(self, start: int) -> None:
        """Materialize plan arrays for global steps ``[start, start + C)``.

        Re-planning slice by slice is exact by the plan contract: each
        plan call consumes the session streams precisely as that many
        sequential interactions would, so consecutive chunks realize
        the same walks and noise as one full-horizon plan
        (``tests/sim/test_chunked_plans.py`` pins the equivalence).
        """
        length = min(self._chunk, self._horizon - start)
        if self._plan_path == "stationary" and self._plan_limited:
            # stop this chunk at the earliest drift boundary: each
            # session's plan then covers one stationary stretch, and
            # the next chunk re-plans after the session has advanced
            # its epoch — exactly the per-step sequential behavior
            cap = min(
                limit
                for limit in (s.plan_horizon_limit() for s in self.sessions)
                if limit is not None
            )
            length = min(length, cap)
        self._chunk_start = start
        self._chunk_len = length
        if self._plan_path == "stationary":
            plans: list[StationaryRewardPlan] = [
                s.plan_rewards(length) for s in self.sessions
            ]
            self._plan_noise = np.stack([p.noise for p in plans])  # (n, C)
            if start == 0 or self._plan_limited:
                # drifting shards re-gather contexts/means every chunk;
                # _refresh_acting re-encodes only agents whose context
                # actually changed (encoders are deterministic, so a
                # cache hit is exact) — which also lets a persistent
                # shard reuse its encode cache across runs
                self._X = np.stack([p.context for p in plans])
                self._plan_means = np.stack([p.mean_rewards for p in plans])  # (n, A)
                self._plan_acting = self._refresh_acting(self._X)
        elif self._plan_path == "indexed":
            rows = np.stack(
                [s.plan_trace_indexed(length).rows for s in self.sessions]
            )
            self._trace_rows[:, start : start + length] = rows
            if start == 0:
                table = self._row_table
                self._trace_expected_ok = np.full(
                    self.n, table.expected is not None, dtype=bool
                )
                self._trace_expected_is_rewards = (
                    table.expected is table.action_rewards
                )
            if self.mode == AgentMode.WARM_PRIVATE:
                self._encode_new_rows(rows)
        else:  # dense per-agent traces
            traces: list[TracePlan] = [s.plan_trace(length) for s in self.sessions]
            self._trace_ctx = np.stack([p.contexts for p in traces])  # (n, C, d)
            self._trace_rewards = np.stack(
                [p.action_rewards for p in traces]
            )  # (n, C, A)
            if start == 0:
                self._trace_expected_ok = np.asarray(
                    [p.expected is not None for p in traces], dtype=bool
                )
            # the expected channel is only materialized when the run
            # tracks it; logged-data plans usually alias it to the
            # reward table (expected == realized), in which case the
            # per-step values fall out of the reward gather for free
            self._trace_expected = None
            if self._track_expected and self._trace_expected_ok.any():
                if all(p.expected is p.action_rewards for p in traces):
                    self._trace_expected_is_rewards = True
                else:
                    # absent expected channels stay zero; their agents
                    # are masked out of the expected matrix at step 0
                    ref = next(p.expected for p in traces if p.expected is not None)
                    self._trace_expected = np.zeros(
                        (self.n, *ref.shape), dtype=np.float64
                    )
                    for j, p in enumerate(traces):
                        if p.expected is not None:
                            self._trace_expected[j] = p.expected
            if self.mode == AgentMode.WARM_PRIVATE:
                self._precompute_trace_codes()

    def _roll_history(self) -> None:
        """Retain the chunk tail needed across the boundary (dense only)."""
        if self._hist_len <= 0:
            return
        keep = self._hist_len

        def tail(hist: np.ndarray | None, chunk: np.ndarray) -> np.ndarray:
            joined = chunk if hist is None else np.concatenate([hist, chunk], axis=1)
            return joined[:, max(0, joined.shape[1] - keep) :].copy()

        self._hist_ctx = tail(self._hist_ctx, self._trace_ctx)
        if self._trace_codes is not None:
            self._hist_codes = tail(self._hist_codes, self._trace_codes)

    def _encode_new_rows(self, chunk_rows: np.ndarray) -> None:
        """Extend the shared code tables to cover this chunk's rows.

        The indexed counterpart of :meth:`_precompute_trace_codes`:
        encoders are deterministic and ``encode_batch`` row-exact, so
        each distinct *dataset row* is encoded at most once per
        encoder — no matter how many agents or steps visit it, and no
        matter how the horizon is chunked — and every later use
        (acting, report payloads) is a pure gather.
        """
        for g, members in enumerate(self._encoder_groups()):
            visited = np.unique(chunk_rows[members])
            new = visited[~self._row_encoded[g, visited]]
            if new.size == 0:
                continue
            encoder = self.agents[members[0]].encoder
            codes = encoder.encode_batch(self._row_table.contexts[new])
            self._row_codes[g, new] = codes
            if self._row_reps is not None:
                self._row_reps[g, new] = encoder.decode_batch(codes)
            self._row_encoded[g, new] = True

    def _init_batch_recording(self, n_interactions: int) -> None:
        """Switch this shard's reporting pipeline to the columnar path.

        Plan-capable shards keep their whole context history in arrays
        (fixed plan contexts or the trace tensor), so the sampled
        window item of any report is a pure gather — the per-agent
        ``record_interaction`` loop is replaced by
        :class:`StackedParticipation` masks plus per-round appends into
        a :class:`~repro.core.payload.ReportLog` the agents' outboxes
        reference.  Counters (``n_interactions``, ``total_reward``)
        accumulate in shard arrays, written back by :meth:`finish` in
        the scalar accumulation order.
        """
        self._batch_recording = True
        self._horizon = n_interactions
        self._base_inter = np.array([a.n_interactions for a in self.agents], dtype=np.intp)
        self._reward_acc = np.array([a.total_reward for a in self.agents], dtype=np.float64)
        if self.mode == AgentMode.COLD:
            return
        parts = [a.participation for a in self.agents]
        self._part = StackedParticipation(parts)
        # items buffered before this run (partial windows of a previous
        # round / object-path prefix) can still be sampled at the first
        # window boundary; keep them reachable
        self._pre_buffers = [list(p._buffer) for p in parts]
        kind = "encoded" if self.mode == AgentMode.WARM_PRIVATE else "raw"
        self._log = ReportLog(kind, [a.agent_id for a in self.agents])
        for j, agent in enumerate(self.agents):
            agent.adopt_report_log(self._log, j)

    def _precompute_trace_codes(self) -> None:
        """Batch-encode the whole trace (warm-private traced shards).

        Encoders are deterministic and :meth:`Encoder.encode_batch` is
        row-exact against scalar ``encode`` (the base-class contract),
        so encoding at plan time instead of per round is exact — and
        collapses the last per-agent-per-round Python of the replay
        fast path into one batched call per *distinct encoder* (shards
        only guarantee equal codebook size, so agents are grouped by
        encoder object).
        """
        n, horizon, d = self._trace_ctx.shape
        codes = np.empty((n, horizon), dtype=np.intp)
        groups = self._encoder_groups()
        for members in groups:
            encoder = self.agents[members[0]].encoder
            block = self._trace_ctx[members].reshape(members.size * horizon, d)
            codes[members] = encoder.encode_batch(block).reshape(members.size, horizon)
        self._trace_codes = codes
        if self.private_context == "centroid":
            reps = np.empty((n, horizon, d), dtype=np.float64)
            for members in groups:
                encoder = self.agents[members[0]].encoder
                reps[members] = encoder.decode_batch(codes[members].ravel()).reshape(
                    members.size, horizon, d
                )
            self._trace_reps = reps

    @property
    def stationary(self) -> bool:
        """This shard runs on pre-realized stationary reward plans."""
        return self._plan_path == "stationary"

    @property
    def traced(self) -> bool:
        """This shard runs on pre-materialized replay traces (either form)."""
        return self._plan_path in ("dense", "indexed")

    @property
    def indexed(self) -> bool:
        """This shard runs on the shared-row-table trace form."""
        return self._plan_path == "indexed"

    def _col(self, t):
        """Result-matrix column for global step ``t`` (scalar or array).

        Identity without a result ring; ``t % result_window`` with one.
        Only result-matrix reads/writes map through this — plan arrays
        always index by global step.
        """
        return t if self._colmod is None else t % self._colmod

    def plan_nbytes(self, *, seen: set[int] | None = None) -> dict[str, int]:
        """Bytes currently held by this shard's plan materialization.

        ``per_agent`` counts arrays scaling with ``n_agents x steps``
        (dense trace blocks, history tails, row walks, stationary
        noise); ``shared`` counts per-dataset arrays whose size is
        independent of the population (the row table and the per-row
        code/centroid tables).  The memory bench
        (``benchmarks/bench_memory.py``) records both; the
        shared-row-table claim is their ratio.

        ``seen`` (a set of ``id(row_table)``) dedupes the shared row
        table across shards that gather through the *same* object —
        without it a multi-shard sum attributes those bytes once per
        shard.  :func:`aggregate_plan_nbytes` threads one ``seen``
        through a whole shard list.
        """
        arrays = [
            self._plan_noise,
            self._trace_ctx,
            self._trace_rewards,
            self._trace_expected,
            self._trace_codes,
            self._trace_reps,
            self._trace_rows,
            self._hist_ctx,
            self._hist_codes,
        ]
        if self.stationary:
            arrays += [self._X, self._plan_means]
            if self._plan_acting is not self._X:  # aliased when acting on raw contexts
                arrays.append(self._plan_acting)
        per_agent = sum(a.nbytes for a in arrays if a is not None)
        shared = 0
        if self._row_table is not None:
            if seen is None or id(self._row_table) not in seen:
                shared = self._row_table.nbytes()
                if seen is not None:
                    seen.add(id(self._row_table))
        shared += sum(
            a.nbytes
            for a in (self._row_codes, self._row_reps, self._row_encoded)
            if a is not None
        )
        return {"per_agent": per_agent, "shared": shared, "total": per_agent + shared}

    # ------------------------------------------------------------------ #
    def step(
        self,
        t: int,
        rewards: np.ndarray,
        actions: np.ndarray,
        expected: np.ndarray | None,
        expected_ok: np.ndarray,
    ) -> None:
        """Run interaction ``t`` for every agent in this shard.

        Thread-safe against other shards stepping the same ``t``: all
        writes land at this shard's (disjoint) agent indices, and all
        touched objects — sessions, agents, stacked state, caches — are
        owned by this shard alone.
        """
        if self._faults is not None:
            self._faults.on_step(
                self._fault_shard,
                t,
                self._fault_attempt,
                in_worker=self._fault_in_worker,
            )
        if self._plan_path is not None and t == self._chunk_start + self._chunk_len:
            self._roll_history()
            self._materialize_chunk(t)
        s = t - self._chunk_start  # chunk-local step into the plan arrays
        tc = self._col(t)  # result-matrix column (ring when streaming)
        rows_t = None
        if self.stationary:
            acting = self._plan_acting
            X = self._X
        elif self.indexed:
            rows_t = self._trace_rows[:, t]
            acting = self._indexed_acting(rows_t)
            X = None  # every gather goes through the shared row table
        elif self.traced:
            X = self._trace_ctx[:, s]
            acting = self._trace_acting(s, X)
        else:
            X = self._next_contexts()
            acting = self._refresh_acting(X)

        acts = self.stacked.select(acting)
        actions[self.indices, tc] = acts

        if self.stationary:
            # StationaryRewardPlan.realize, vectorized across agents for
            # one step: mean[a] + z, clipped — the same elementwise ops
            # as session.reward (a test pins the plan to the sequential
            # reward stream)
            r = np.clip(self._plan_means[self._rows, acts] + self._plan_noise[:, s], 0.0, 1.0)
            rewards[self.indices, tc] = r
            if expected is not None:
                expected[self.indices, tc] = self._plan_means[self._rows, acts]
        elif self.indexed:
            # IndexedTracePlan.realize, vectorized across agents for one
            # step: a gather through the *shared* per-dataset reward
            # table — replay rewards are deterministic
            r = self._row_table.action_rewards[rows_t, acts].astype(np.float64)
            rewards[self.indices, tc] = r
            if expected is not None:
                if t == 0:
                    expected_ok[self.indices] &= self._trace_expected_ok
                if self._trace_expected_is_rewards:
                    expected[self.indices, tc] = r
                elif self._row_table.expected is not None:
                    expected[self.indices, tc] = self._row_table.expected[rows_t, acts]
        elif self.traced:
            # TracePlan.realize, vectorized across agents for one step:
            # a pure table gather — replay rewards are deterministic
            r = self._trace_rewards[self._rows, s, acts].astype(np.float64)
            rewards[self.indices, tc] = r
            if expected is not None:
                if t == 0:
                    expected_ok[self.indices] &= self._trace_expected_ok
                if self._trace_expected_is_rewards:
                    expected[self.indices, tc] = r
                elif self._trace_expected is not None:
                    expected[self.indices, tc] = self._trace_expected[self._rows, s, acts]
        else:
            r = np.empty(self.n, dtype=np.float64)
            for j in range(self.n):
                r[j] = self.sessions[j].reward(int(acts[j]))
                g = self.indices[j]
                if expected is not None and expected_ok[g]:
                    try:
                        expected[g, tc] = self.sessions[j].expected_rewards()[acts[j]]
                    except NotImplementedError:
                        expected_ok[g] = False
            rewards[self.indices, tc] = r

        self.stacked.update(acting, acts, r)

        # reporting pipeline: columnar for plan-capable shards, the
        # scalar record_interaction loop otherwise
        if self._batch_recording:
            self._record_batch(t, acts, r, rewards, actions)
        else:
            for j in range(self.n):
                self.agents[j].record_interaction(X[j], int(acts[j]), float(r[j]))

    # ------------------------------------------------------------------ #
    def _record_batch(
        self,
        t: int,
        acts: np.ndarray,
        r: np.ndarray,
        rewards: np.ndarray,
        actions: np.ndarray,
    ) -> None:
        """Columnar stand-in for the per-agent ``record_interaction`` loop.

        Counters accumulate in shard arrays; participation advances
        through :class:`StackedParticipation` (vectorized masks,
        per-agent RNG draws in the scalar order); report payloads are
        *gathered* — codes from the plan-time batch encodings
        (``_trace_codes`` / the stationary encode cache), contexts from
        the plan arrays, sampled actions/rewards from the already
        filled result matrices — instead of re-encoded or re-built per
        report.
        """
        self._reward_acc += r
        if self._part is None:  # cold shard: counters only
            return
        fired, within = self._part.step()
        rows = np.nonzero(fired)[0]
        if rows.size == 0:
            return
        # the sampled item of agent j is `back` steps behind the
        # current interaction; negative sample steps land in the items
        # buffered before this run (the scalar buffer prefix)
        back = self._part.window[rows] - 1 - within[rows]
        sample_t = t - back
        inter_idx = self._base_inter[rows] + (t + 1)
        acts_s = np.empty(rows.size, dtype=np.intp)
        rew_s = np.empty(rows.size, dtype=np.float64)
        fresh = sample_t >= 0
        f_rows, f_t = rows[fresh], sample_t[fresh]
        g_rows = self.indices[f_rows]
        f_c = self._col(f_t)  # ring columns still hold steps >= t - window + 1
        acts_s[fresh] = actions[g_rows, f_c]
        rew_s[fresh] = rewards[g_rows, f_c]
        if self.mode == AgentMode.WARM_PRIVATE:
            payload = np.empty(rows.size, dtype=np.intp)
            payload[fresh] = self._codes_at(f_rows, f_t)
        else:
            payload = np.empty((rows.size, self._ctx_dim()), dtype=np.float64)
            payload[fresh] = self._contexts_at(f_rows, f_t)
        if not fresh.all():
            # rare first-boundary case: the sampled item predates this
            # run and lives in the scalar buffer prefix — resolve it
            # exactly as the scalar path would (encode at report time)
            for i in np.nonzero(~fresh)[0]:
                j = int(rows[i])
                ctx, action, reward = self._pre_buffers[j][int(within[j])]
                acts_s[i] = int(action)
                rew_s[i] = float(reward)
                if self.mode == AgentMode.WARM_PRIVATE:
                    payload[i] = self.agents[j].encoder.encode(ctx)
                else:
                    payload[i] = np.asarray(ctx, dtype=np.float64)
        self._log.append(rows, payload, acts_s, rew_s, inter_idx)

    def finish(self, rewards: np.ndarray, actions: np.ndarray) -> None:
        """Write columnar bookkeeping back into the scalar objects.

        After this, agents and their participation policies are in
        byte-for-byte the state the sequential loop would have left:
        counters, report budgets, and the participation buffers
        (rebuilt from the plan context history so a later object-path
        round continues identically).
        """
        if not self._batch_recording:
            return
        T = self._horizon
        for j, agent in enumerate(self.agents):
            agent.n_interactions = int(self._base_inter[j] + T)
            agent.total_reward = float(self._reward_acc[j])
        if self._part is None:
            return
        self._part.writeback()
        for j, agent in enumerate(self.agents):
            part = agent.participation
            n_new = int(self._part.new_buffered[j])
            buf: list = [] if self._part.flipped[j] else list(self._pre_buffers[j])
            if n_new:
                g = int(self.indices[j])
                steps = np.arange(T - n_new, T)
                ctx_rows = self._contexts_at(np.full(n_new, j, dtype=np.intp), steps)
                for i, t in enumerate(steps):
                    buf.append(
                        (
                            np.asarray(ctx_rows[i], dtype=np.float64).copy(),
                            int(actions[g, self._col(t)]),
                            float(rewards[g, self._col(t)]),
                        )
                    )
            part._buffer = buf

    # ------------------------------------------------------------------ #
    def _next_contexts(self) -> np.ndarray:
        if self._X is None:
            first = self.sessions[0].next_context()
            self._X = np.empty((self.n, first.shape[0]), dtype=np.float64)
            self._X[0] = first
            for j in range(1, self.n):
                self._X[j] = self.sessions[j].next_context()
        else:
            for j in range(self.n):
                self._X[j] = self.sessions[j].next_context()
        return self._X

    def _trace_acting(self, s: int, X: np.ndarray) -> np.ndarray:
        """Acting representation for chunk-local step ``s`` (dense form).

        Warm-private representations come from the plan-time batch
        encoding (:meth:`_precompute_trace_codes`) — pure gathers, no
        per-agent calls.
        """
        if self.mode != AgentMode.WARM_PRIVATE:
            return X
        if self.stacked.wants_codes:
            return self._trace_codes[:, s]
        if self.private_context == "centroid":
            return self._trace_reps[:, s]
        encoder = self.agents[0].encoder
        return encoder.one_hot_batch(self._trace_codes[:, s])  # type: ignore[union-attr]

    def _indexed_acting(self, rows_t: np.ndarray) -> np.ndarray:
        """Acting representation for one step of an indexed shard.

        Every form is a gather through the shared per-dataset tables —
        raw contexts from the row table, codes / centroid
        representations from the per-row encoding tables filled by
        :meth:`_encode_new_rows`.
        """
        if self.mode != AgentMode.WARM_PRIVATE:
            return self._row_table.contexts[rows_t]
        codes = self._row_codes[self._agent_group, rows_t]
        if self.stacked.wants_codes:
            return codes
        if self.private_context == "centroid":
            return self._row_reps[self._agent_group, rows_t]
        return self.agents[0].encoder.one_hot_batch(codes)  # type: ignore[union-attr]

    def _ctx_dim(self) -> int:
        """Context dimension of this shard's raw-payload source."""
        if self.indexed:
            return self._row_table.contexts.shape[1]
        if self.traced:
            return self._trace_ctx.shape[2]
        return self._X.shape[1]

    def _codes_at(self, agent_rows: np.ndarray, steps: np.ndarray) -> np.ndarray:
        """Plan-time codes of ``(shard-local agent, global step)`` pairs.

        Serves the columnar report-payload gathers: indexed shards read
        the shared per-row code tables through the full row walk (any
        step, any chunk), dense traced shards read the current chunk
        block or its history tail (a window straddling the boundary
        looks back at most ``window - 1 <= hist_len`` steps), and
        stationary shards read the per-agent encode cache (contexts are
        fixed, so the cached code *is* the step's code).  Codes are
        never re-encoded on any path.
        """
        if self.indexed:
            return self._row_codes[
                self._agent_group[agent_rows], self._trace_rows[agent_rows, steps]
            ]
        if self.traced:
            out = np.empty(agent_rows.size, dtype=np.intp)
            loc = steps - self._chunk_start
            cur = loc >= 0
            out[cur] = self._trace_codes[agent_rows[cur], loc[cur]]
            if not cur.all():
                past = ~cur
                out[past] = self._hist_codes[
                    agent_rows[past], self._hist_codes.shape[1] + loc[past]
                ]
            return out
        return self._cached_code[agent_rows]

    def _contexts_at(self, agent_rows: np.ndarray, steps: np.ndarray) -> np.ndarray:
        """Raw contexts of ``(shard-local agent, global step)`` pairs.

        Same dispatch as :meth:`_codes_at`; serves the raw report
        payloads and :meth:`finish`'s participation-buffer rebuild.
        """
        if self.indexed:
            return self._row_table.contexts[self._trace_rows[agent_rows, steps]]
        if self.traced:
            out = np.empty((agent_rows.size, self._trace_ctx.shape[2]), dtype=np.float64)
            loc = steps - self._chunk_start
            cur = loc >= 0
            out[cur] = self._trace_ctx[agent_rows[cur], loc[cur]]
            if not cur.all():
                past = ~cur
                out[past] = self._hist_ctx[
                    agent_rows[past], self._hist_ctx.shape[1] + loc[past]
                ]
            return out
        return self._X[agent_rows]

    def _refresh_acting(self, X: np.ndarray) -> np.ndarray:
        if self.mode != AgentMode.WARM_PRIVATE:
            return X
        stale = np.asarray(
            [
                j
                for j in range(self.n)
                if self._cached_ctx[j] is None
                or not np.array_equal(X[j], self._cached_ctx[j])
            ],
            dtype=np.intp,
        )
        return self._acting_representation(X, stale)

    def _acting_representation(self, X: np.ndarray, stale: np.ndarray) -> np.ndarray:
        """The representation the stacked policy consumes for contexts ``X``.

        ``stale`` lists shard-local agent indices whose cached encoding
        must be refreshed (all of them on the first call).  Encoders are
        deterministic — the ``eps_bar = 0`` premise — so serving a code
        from cache is exact, not approximate.
        """
        if self.mode != AgentMode.WARM_PRIVATE:
            return X
        for j in stale:
            j = int(j)
            self._cached_ctx[j] = X[j].copy()
            encoder = self.agents[j].encoder
            self._cached_code[j] = encoder.encode(X[j])
            if self.private_context == "centroid":
                self._cached_rep[j] = encoder.decode(int(self._cached_code[j]))
        if self.stacked.wants_codes:
            return self._cached_code
        if self.private_context == "centroid":
            return np.stack(self._cached_rep)
        return self.agents[0].encoder.one_hot_batch(self._cached_code)  # type: ignore[union-attr]


def aggregate_plan_nbytes(shards: Sequence[_Shard]) -> dict[str, int]:
    """Sum :meth:`_Shard.plan_nbytes` over ``shards`` without double counting.

    Shards over one dataset gather through the *same*
    :class:`~repro.data.environment.TraceRowTable` object (PR 5 aliases
    them deliberately), so a naive per-shard sum attributes the shared
    table's bytes once per shard.  One ``seen`` set threaded through
    every shard counts each table exactly once — the honest multi-shard
    totals ``bench_memory.py`` records.
    """
    totals = {"per_agent": 0, "shared": 0, "total": 0}
    seen: set[int] = set()
    for shard in shards:
        for key, value in shard.plan_nbytes(seen=seen).items():
            totals[key] += value
    return totals


def _run_shard_remote(payload: bytes, fault_ctx: tuple | None = None) -> bytes:
    """Worker-process body for ``worker_backend="process"``.

    Receives one pickled shard population, runs its *entire* horizon
    (shards never interact, so no per-round synchronization with the
    parent is needed), and ships back the mutated agents and sessions.
    The parent adopts the returned state into its own objects
    (:meth:`FleetRunner._adopt`).

    Results travel one of two ways.  On the shared-memory protocol
    (:mod:`repro.sim.shm`) the payload carries :class:`~repro.sim.shm.
    ShmArrayRef` descriptors of the parent's *global* result matrices
    plus this shard's global row indices; the worker attaches the
    blocks (cached per process, so retries and pool re-spawns just
    re-attach by name) and writes results directly at its disjoint
    rows — the thread backend's memory model, across a process
    boundary.  On the legacy fallback (``REPRO_NO_SHM``, or platforms
    without POSIX shared memory) it builds local matrices and pickles
    them back, as before.

    ``fault_ctx`` is ``(plan_spec, shard_index, attempt)`` when the
    parent runs supervised with a fault plan armed: the *parent* decides
    the plan (including the env knob) and ships it explicitly, so a
    retry's incremented attempt number reaches the worker and random
    faults stay silent on the replay.  Partial shared-memory writes of
    a crashed attempt are fully overwritten by the retry (or NaN-filled
    by the parent on a skip), exactly like the thread path's.
    """
    from .shm import attach, shm_loads

    (
        agents,
        sessions,
        n_interactions,
        track_expected,
        plan_chunk_size,
        plan_form,
        exactness,
        kernel_block_size,
        result_refs,
        rows,
    ) = shm_loads(payload)
    n = len(agents)
    indices = (
        np.arange(n, dtype=np.intp)
        if result_refs is None
        else np.asarray(rows, dtype=np.intp)
    )
    shard = _Shard(
        indices,
        agents,
        sessions,
        plan_chunk_size=plan_chunk_size,
        plan_form=plan_form,
        exactness=exactness,
        kernel_block_size=kernel_block_size,
    )
    if fault_ctx is not None:
        spec, shard_index, attempt = fault_ctx
        shard.arm_faults(
            FaultPlan.parse(spec), shard_index, attempt, in_worker=True
        )
    shard.prepare(n_interactions, track_expected=track_expected)
    if result_refs is None:
        rewards = np.empty((n, n_interactions), dtype=np.float64)
        actions = np.empty((n, n_interactions), dtype=np.intp)
        expected = (
            np.empty((n, n_interactions), dtype=np.float64) if track_expected else None
        )
        expected_ok = np.full(n, track_expected, dtype=bool)
    else:
        rewards_ref, actions_ref, expected_ref, ok_ref = result_refs
        rewards = attach(rewards_ref)
        actions = attach(actions_ref)
        expected = None if expected_ref is None else attach(expected_ref)
        expected_ok = attach(ok_ref)
    for t in range(n_interactions):
        shard.step(t, rewards, actions, expected, expected_ok)
    shard.finish(rewards, actions)
    shard.stacked.writeback()
    if result_refs is None:
        return pickle.dumps((rewards, actions, expected, expected_ok, agents, sessions))
    # results already live in the parent's matrices; ship only the
    # mutated population — attached arrays the sessions reference (a
    # dataset's row tables) collapse back into their descriptors
    from .shm import shm_dumps

    return shm_dumps((agents, sessions))


class FleetRunner:
    """Vectorized population simulator (see module docstring).

    Parameters
    ----------
    agents:
        Any population of fleet-capable agents.  Homogeneous
        populations run as a single shard (the PR-1 fast path);
        mixed policy kinds / hyperparameters / modes / codebook sizes
        shard automatically.
    sessions:
        One user session per agent, aligned by index.
    config:
        An :class:`~repro.experiments.runner.EngineConfig` carrying
        every engine knob at once (duck-typed; this module never
        imports :mod:`repro.experiments`).  Mutually exclusive with
        the individual kwargs below.  Its ``engine`` field is ignored
        (this class *is* the fleet engine); its ``sink`` becomes the
        default streaming target for :meth:`run`.
    n_workers:
        Shard-level parallelism (default 1 = serial).  Shards are
        fully independent, so ``n_workers > 1`` runs each shard's
        whole horizon concurrently — results are identical to serial
        stepping (shard order is unobservable;
        ``tests/sim/test_parallel.py`` pins it).  Only populations
        with more than one shard can benefit from threads.
    worker_backend:
        ``"thread"`` (default) or ``"process"`` — see
        :data:`WORKER_BACKENDS`.  Choosing ``"process"`` is always
        honored (even with ``n_workers=1`` or a single shard), so its
        semantics never silently vary.  The process backend requires a
        picklable population and, as it must ship mutated state back,
        *rebinds the component objects* of each agent/session (the
        ``LocalAgent`` and session objects keep their identity, but
        e.g. ``agent.policy`` becomes a state-equal replacement); hold
        references through the agent, not to its parts.
    plan_chunk_size:
        Materialize session plans in horizon slices of this many steps
        instead of all at once (default ``None`` = the whole horizon) —
        bounds dense traced-plan memory at ``O(n_agents x chunk)``.
        Any chunk size produces bit-identical results (the plan
        contract makes slice-by-slice planning exact; participation
        windows straddle chunk boundaries through a short history
        tail), and a chunk size ``>= n_interactions`` *is* the
        unchunked path.  Only affects plan-capable shards.
    plan_form:
        Traced-plan representation, one of :data:`PLAN_FORMS`
        (default ``"auto"``: shared-row-table gathers whenever every
        session of a shard walks the same per-dataset
        :class:`~repro.data.environment.TraceRowTable`, per-agent
        tables otherwise).  All forms are bit-identical; the knob
        exists so benches and tests can pin a form.
    exactness:
        Contract tier, one of :data:`EXACTNESS_TIERS` (default
        ``"bit"``: every result bit-identical to the sequential loop,
        today's behavior).  ``"fast"`` trades bit-identity for memory:
        policy kinds with a fast stacker (currently ``code_linucb``)
        hold float32 sparse state — trajectories are *statistically*
        equivalent to the bit tier (``tests/sim/test_exactness.py``
        pins tolerance bands), not bitwise; kinds without one run
        their bit stacker unchanged, so ``"fast"`` degenerates to
        ``"bit"`` for them.
    persistent:
        Keep each shard's stacked state warm between :meth:`run` calls
        (default ``False`` = restack per run, the historical
        behavior).  Reuse is bitwise-identical to restacking —
        ``writeback`` leaves stacked arrays equal to the policy
        objects — and is the backbone of streaming deployments
        (:class:`~repro.experiments.serve.FleetService`): repeated
        short runs skip the O(population) restack.  Population churn
        (:meth:`add_agents` / :meth:`remove_agents`) restacks only the
        affected shards; mutating a policy *outside* the fleet (e.g.
        ``warm_start``) requires :meth:`invalidate`.
    fault_policy:
        A :class:`FaultPolicy` enabling worker supervision: failed
        shard horizons are retried from a pre-attempt state snapshot
        (bitwise-invisible when a retry succeeds), dead worker
        processes are respawned, and exhausted shards either raise
        :class:`~repro.utils.exceptions.WorkerError` or degrade out
        (``on_exhausted="skip_shard"``).  ``None`` (default) keeps the
        historical fail-fast path — unless a fault plan is armed, in
        which case a forgiving default policy switches supervision on
        (the chaos knob must never turn a passing run into a crash).
    fault_plan:
        A :class:`~repro.sim.faults.FaultPlan` (or its spec string)
        injecting deterministic faults into this runner's shard steps —
        the test-facing twin of the process-wide ``REPRO_FAULTS`` env
        knob, which applies when this is ``None``.
    """

    def __init__(
        self,
        agents: Sequence[LocalAgent],
        sessions: Sequence[UserSession],
        *,
        config=None,
        n_workers: int = 1,
        worker_backend: str = "thread",
        plan_chunk_size: int | None = None,
        plan_form: str = "auto",
        exactness: str = "bit",
        kernel_block_size: int | None = None,
        persistent: bool = False,
        fault_policy: FaultPolicy | None = None,
        fault_plan: "FaultPlan | str | None" = None,
    ) -> None:
        if config is not None:
            # an EngineConfig (duck-typed: sim must not import
            # experiments) — it already carries every engine field, so
            # mixing it with explicit kwargs would leave precedence
            # ambiguous; its `engine` field is moot here (this *is* the
            # fleet engine) and `sink` stays per-run (see run()).
            if (
                n_workers != 1
                or worker_backend != "thread"
                or plan_chunk_size is not None
                or plan_form != "auto"
                or exactness != "bit"
                or kernel_block_size is not None
                or fault_policy is not None
            ):
                raise ConfigError(
                    "pass engine settings either via config= or as individual "
                    "kwargs, not both (the EngineConfig already carries them)"
                )
            n_workers = config.n_workers
            worker_backend = config.worker_backend
            plan_chunk_size = config.plan_chunk_size
            plan_form = config.plan_form
            exactness = config.exactness
            kernel_block_size = getattr(config, "kernel_block_size", None)
            fault_policy = getattr(config, "fault_policy", None)
            self._config_sink = getattr(config, "sink", None)
        else:
            self._config_sink = None
        self.agents = list(agents)
        self.sessions = list(sessions)
        self.n_workers = check_positive_int(n_workers, name="n_workers")
        if worker_backend not in WORKER_BACKENDS:
            raise ConfigError(
                f"worker_backend must be one of {WORKER_BACKENDS}, got {worker_backend!r}"
            )
        self.worker_backend = worker_backend
        if plan_chunk_size is not None:
            plan_chunk_size = check_positive_int(plan_chunk_size, name="plan_chunk_size")
        self.plan_chunk_size = plan_chunk_size
        if plan_form not in PLAN_FORMS:
            raise ConfigError(f"plan_form must be one of {PLAN_FORMS}, got {plan_form!r}")
        self.plan_form = plan_form
        if exactness not in EXACTNESS_TIERS:
            raise ConfigError(
                f"exactness must be one of {EXACTNESS_TIERS}, got {exactness!r}"
            )
        self.exactness = exactness
        if kernel_block_size is not None:
            kernel_block_size = check_positive_int(
                kernel_block_size, name="kernel_block_size"
            )
        self.kernel_block_size = kernel_block_size
        self.persistent = bool(persistent)
        if fault_policy is not None and not isinstance(fault_policy, FaultPolicy):
            raise ConfigError(
                f"fault_policy must be a FaultPolicy or None, got {fault_policy!r}"
            )
        self.fault_policy = fault_policy
        if isinstance(fault_plan, str):
            fault_plan = FaultPlan.parse(fault_plan)
        if fault_plan is not None and not isinstance(fault_plan, FaultPlan):
            raise ConfigError(
                f"fault_plan must be a FaultPlan, a spec string, or None, "
                f"got {fault_plan!r}"
            )
        self.fault_plan = fault_plan
        # set by resume(): the loaded checkpoint resume_run() continues
        self._resume_ckpt = None
        self._resume_path = None
        if len(self.agents) != len(self.sessions):
            raise ConfigError(
                f"agents ({len(self.agents)}) and sessions ({len(self.sessions)}) "
                "must align one-to-one"
            )
        # partition eagerly so unsupported populations fail at
        # construction, not mid-run; an empty population partitions
        # into zero shards and runs to an empty result.  The dict is
        # insertion-ordered by first appearance — churn appends to /
        # filters these lists instead of re-partitioning everything.
        self._groups: dict[tuple, list[int]] = {}
        for i, agent in enumerate(self.agents):
            self._groups.setdefault(_checked_shard_key(agent, i), []).append(i)
        # persistent mode keeps each shard's stacked state warm between
        # runs, keyed like _groups; entries drop whenever membership
        # changes (see add_agents/remove_agents/invalidate)
        self._shards: dict[tuple, _Shard] = {}

    @property
    def _shard_index_groups(self) -> list[np.ndarray]:
        """Shard membership as index arrays (ordered by first appearance)."""
        return [np.asarray(idx, dtype=np.intp) for idx in self._groups.values()]

    @property
    def n_shards(self) -> int:
        """Number of stacked states this population partitions into."""
        return len(self._groups)

    # ------------------------------------------------------------------ #
    # population churn
    def add_agents(
        self, agents: Sequence[LocalAgent], sessions: Sequence[UserSession]
    ) -> None:
        """Enroll ``agents`` mid-deployment (incremental re-sharding).

        Only the shards the newcomers land in restack on the next run;
        every untouched shard keeps its cached stacked state (in
        persistent mode) and is never rebuilt.  Surviving agents keep
        their objects — and therefore their ``spawn_seeds`` RNG
        streams — untouched.
        """
        agents = list(agents)
        sessions = list(sessions)
        if len(agents) != len(sessions):
            raise ConfigError(
                f"agents ({len(agents)}) and sessions ({len(sessions)}) "
                "must align one-to-one"
            )
        base = len(self.agents)
        for off, agent in enumerate(agents):
            key = _checked_shard_key(agent, base + off)
            self._groups.setdefault(key, []).append(base + off)
            self._shards.pop(key, None)  # membership changed: restack
        self.agents.extend(agents)
        self.sessions.extend(sessions)

    def remove_agents(self, agents: Sequence[LocalAgent]) -> None:
        """Retire ``agents`` mid-deployment (incremental re-sharding).

        Accepts agent objects (matched by identity) or integer
        population indices.  Shards losing members restack on the next
        run; untouched shards keep their stacked state.  Departing
        agents keep any unsent outbox reports — drain them before (or
        after) removal; the shuffler's async buffer holds whatever was
        already collected.
        """
        doomed: set[int] = set()
        by_id = {id(a): i for i, a in enumerate(self.agents)}
        for a in agents:
            if isinstance(a, (int, np.integer)):
                i = int(a)
                if not 0 <= i < len(self.agents):
                    raise ConfigError(
                        f"agent index {i} out of range (population size "
                        f"{len(self.agents)})"
                    )
            else:
                i = by_id.get(id(a))
                if i is None:
                    raise ConfigError(
                        f"agent {getattr(a, 'agent_id', a)!r} is not in this "
                        "fleet's population"
                    )
            doomed.add(i)
        if not doomed:
            return
        old_to_new: dict[int, int] = {}
        keep_agents, keep_sessions = [], []
        for i, (agent, session) in enumerate(zip(self.agents, self.sessions)):
            if i in doomed:
                continue
            old_to_new[i] = len(keep_agents)
            keep_agents.append(agent)
            keep_sessions.append(session)
        new_groups: dict[tuple, list[int]] = {}
        for key, members in self._groups.items():
            survivors = [old_to_new[i] for i in members if i not in doomed]
            if len(survivors) != len(members):
                self._shards.pop(key, None)  # membership changed: restack
            if survivors:
                new_groups[key] = survivors
        self.agents = keep_agents
        self.sessions = keep_sessions
        self._groups = new_groups

    def invalidate(self) -> None:
        """Drop every cached shard (persistent mode).

        Required after mutating any agent's policy *outside* the fleet
        (e.g. ``warm_start``): cached stacked state would no longer
        mirror the policy objects.  Churn and runs handle their own
        cache consistency; this is the escape hatch for external
        mutation.
        """
        self._shards.clear()

    # ------------------------------------------------------------------ #
    def _shard_for(
        self, key: tuple, members: list[int], rows: list[int] | None = None
    ) -> _Shard:
        """The shard for one group — cached in persistent mode.

        A cached shard is reused only when its member agent list is
        *identity*-equal to the current one (same objects, same order);
        reuse then skips ``stack_policies`` entirely, which is bitwise
        safe because ``writeback`` leaves the stacked arrays equal to
        the policy state and ``prepare`` resets all per-run state.
        Global indices may have shifted under churn, so they (and the
        session bindings) are refreshed on every run.  ``rows``
        overrides the result-matrix rows the shard writes (subset runs
        write at subset-local positions, not global indices).
        """
        idx = np.asarray(members if rows is None else rows, dtype=np.intp)
        agents = [self.agents[i] for i in members]
        sessions = [self.sessions[i] for i in members]
        shard = self._shards.get(key) if self.persistent else None
        if (
            shard is not None
            and len(shard.agents) == len(agents)
            and all(a is b for a, b in zip(shard.agents, agents))
        ):
            shard.indices = idx
            shard.sessions = sessions
            return shard
        shard = _Shard(
            idx,
            agents,
            sessions,
            plan_chunk_size=self.plan_chunk_size,
            plan_form=self.plan_form,
            exactness=self.exactness,
            kernel_block_size=self.kernel_block_size,
        )
        if self.persistent:
            self._shards[key] = shard
        return shard

    def _build_shard(
        self, key: tuple | None, members: list[int], rows: list[int]
    ) -> _Shard:
        """Materialize the shard of one execution spec.

        Specs with a key are full shard groups (cache-eligible); a
        ``None`` key marks a partial-shard subset run, which always
        builds an ephemeral shard (cached stacked state belongs to the
        full membership).
        """
        if key is not None:
            return self._shard_for(key, members, rows=rows)
        return _Shard(
            np.asarray(rows, dtype=np.intp),
            [self.agents[i] for i in members],
            [self.sessions[i] for i in members],
            plan_chunk_size=self.plan_chunk_size,
            plan_form=self.plan_form,
            exactness=self.exactness,
            kernel_block_size=self.kernel_block_size,
        )

    def _result_window(self, n_interactions: int) -> int:
        """Ring width for streaming runs: every lookback fits.

        The columnar reporting pipeline reads at most ``window - 1``
        steps behind the current interaction (report samples and
        ``finish``'s buffer rebuild), so a ring of ``max(window)``
        columns — plus one for slack, capped at the horizon — retains
        every step a later read can touch.
        """
        windows = [
            int(a.participation.window)
            for a in self.agents
            if a.participation is not None
        ]
        return min(max(windows, default=1) + 1, n_interactions)

    def _empty_result(
        self, n_interactions: int, *, track_expected: bool, sink
    ) -> FleetResult | None:
        """The empty-population result, matching the sequential engine.

        Zero agents (or zero shards) must not reach a worker pool —
        ``max_workers=0`` raises ``ValueError`` — and produce the same
        ``(0, T)`` shapes the sequential loop's ``np.stack`` of zero
        rows would.
        """
        if sink is not None:
            sink.begin(0, n_interactions)
            sink.finish()
            return None
        return FleetResult(
            rewards=np.empty((0, n_interactions), dtype=np.float64),
            actions=np.empty((0, n_interactions), dtype=np.intp),
            expected=(
                np.empty((0, n_interactions), dtype=np.float64)
                if track_expected
                else None
            ),
            expected_mask=np.zeros(0, dtype=bool),
        )

    # ------------------------------------------------------------------ #
    # fault supervision plumbing
    def _active_fault_plan(self) -> FaultPlan | None:
        """This run's fault plan: the explicit one, else the env knob."""
        if self.fault_plan is not None:
            return self.fault_plan
        return active_plan()

    def _effective_fault_policy(self, plan: FaultPlan | None) -> FaultPolicy | None:
        """The supervision policy for this run (``None`` = fail-fast).

        An armed fault plan without an explicit policy gets a default
        forgiving policy: the chaos env knob must *harden* runs, never
        turn a passing suite into a crashing one.
        """
        if self.fault_policy is not None:
            return self.fault_policy
        if plan is not None:
            return FaultPolicy(max_retries=3, backoff=0.0)
        return None

    def _full_specs(self) -> list[tuple]:
        """One execution spec per shard: ``(key, members, rows)``.

        ``members`` are global population indices; ``rows`` the result-
        matrix rows they write (identical for whole-population runs,
        subset-local positions for :meth:`run_subset`).
        """
        return [(key, members, members) for key, members in self._groups.items()]

    def run(
        self,
        n_interactions: int,
        *,
        track_expected: bool = False,
        sink=None,
        checkpoint_every: int | None = None,
        checkpoint_path=None,
        checkpoint_context: bytes | None = None,
    ) -> FleetResult | None:
        """Run ``n_interactions`` rounds over the whole population.

        Side effects match the sequential loop exactly: policies learn
        (state is written back into each agent's policy object),
        participation budgets advance, and outboxes fill with the same
        reports carrying the same metadata.

        ``sink`` (a :class:`~repro.experiments.results.ResultSink`)
        streams per-round result columns instead of materializing the
        ``(n_agents, T)`` matrices — the engine then holds only a small
        column ring (participation's lookback window) and returns
        ``None``; curve-only callers drop the O(n x T) result memory
        entirely.  Emitted values are exactly the matrix entries;
        columns arrive in any order across shards (each carries its
        shard's row indices).  One caveat: a sink receives each
        agent's ``expected_ok`` flag as of the emitting round — for
        every built-in session the flag is fixed before round 0, but a
        custom session whose ``expected_rewards`` starts raising
        mid-run would be masked only from that round on, where the
        matrix path retroactively masks the whole row.

        ``checkpoint_every`` + ``checkpoint_path`` make the run
        restartable: the horizon executes in segments of that many
        rounds, and after each segment a versioned snapshot — the
        pickled population (policy state, RNG streams, participation
        counters, pending outboxes) plus the partial result matrices —
        is written atomically to ``checkpoint_path``.  A run killed
        mid-horizon continues via :meth:`resume`/:meth:`resume_run`
        with results **bit-identical** to the uninterrupted run
        (segmented execution is exact by the plan contract; the
        fast exactness tier is bit-identical to an uninterrupted run
        using the same checkpoint cadence).  ``checkpoint_context``
        is an opaque caller blob stored alongside (``run_setting``
        keeps its collection phase there).  Checkpointing composes
        with supervision but not with a ``sink``.
        """
        n_interactions = check_positive_int(n_interactions, name="n_interactions")
        if sink is None:
            sink = self._config_sink
        if checkpoint_every is not None or checkpoint_path is not None:
            if checkpoint_path is None:
                raise ConfigError(
                    "checkpoint_every without checkpoint_path: tell the run "
                    "where to write its snapshots"
                )
            if sink is not None:
                raise ConfigError(
                    "checkpointing materializes the partial result matrices "
                    "and cannot stream into a sink; drop the sink or the "
                    "checkpointing"
                )
            every = (
                n_interactions
                if checkpoint_every is None
                else check_positive_int(checkpoint_every, name="checkpoint_every")
            )
            return self._run_checkpointed(
                n_interactions,
                track_expected=track_expected,
                every=min(every, n_interactions),
                path=checkpoint_path,
                context=checkpoint_context,
                prefix=None,
            )
        return self._dispatch(
            self._full_specs(),
            len(self.agents),
            n_interactions,
            track_expected=track_expected,
            sink=sink,
        )

    def run_subset(
        self,
        subset: Sequence,
        n_interactions: int,
        *,
        track_expected: bool = False,
    ) -> FleetResult:
        """Run ``n_interactions`` rounds over only ``subset`` of the fleet.

        ``subset`` holds agent objects (matched by identity) or integer
        population indices; the result matrices have one row per subset
        member, in subset order.  Subsets covering a whole shard reuse
        its cached stacked state (persistent mode) — the point of
        serving interleaved cohort requests off one warm fleet — while
        partial-shard members run on an ephemeral stack and invalidate
        their shard's cache (its stacked arrays no longer mirror the
        advanced policy objects).  Either way the outcome is
        bit-identical to building a fresh ``FleetRunner`` over just
        these agents and sessions: shard membership only determines
        *where* the math runs, never what any agent observes.
        """
        n_interactions = check_positive_int(n_interactions, name="n_interactions")
        idx: list[int] = []
        by_id = {id(a): i for i, a in enumerate(self.agents)}
        for a in subset:
            if isinstance(a, (int, np.integer)):
                i = int(a)
                if not 0 <= i < len(self.agents):
                    raise ConfigError(
                        f"agent index {i} out of range (population size "
                        f"{len(self.agents)})"
                    )
            else:
                i = by_id.get(id(a))
                if i is None:
                    raise ConfigError(
                        f"agent {getattr(a, 'agent_id', a)!r} is not in this "
                        "fleet's population"
                    )
            idx.append(i)
        if len(set(idx)) != len(idx):
            raise ConfigError("run_subset members must be unique")
        if not idx:
            return self._empty_result(
                n_interactions, track_expected=track_expected, sink=None
            )
        rows_of = {g: r for r, g in enumerate(idx)}
        chosen_set = set(idx)
        specs: list[tuple] = []
        partial_keys: list[tuple] = []
        for key, members in self._groups.items():
            chosen = [i for i in members if i in chosen_set]
            if not chosen:
                continue
            full = len(chosen) == len(members)
            rows = [rows_of[i] for i in chosen]
            specs.append((key if full else None, chosen, rows))
            if not full:
                partial_keys.append(key)
        try:
            return self._dispatch(
                specs, len(idx), n_interactions,
                track_expected=track_expected, sink=None,
            )
        finally:
            # a partial-shard run advanced some of these shards' members
            # outside their cached stacked state — restack on next use
            for key in partial_keys:
                self._shards.pop(key, None)

    def _dispatch(
        self, specs: list[tuple], n_rows: int, n_interactions: int,
        *, track_expected: bool, sink,
    ) -> FleetResult | None:
        """Route execution specs to the configured backend."""
        if n_rows == 0 or not specs:
            return self._empty_result(
                n_interactions, track_expected=track_expected, sink=sink
            )
        # an explicit process request is always honored — regardless of
        # shard count or n_workers — so the documented process-backend
        # semantics (pickling requirements, component-object rebinding)
        # never silently vary with the population's shape
        if self.worker_backend == "process":
            return self._run_process(
                specs, n_rows, n_interactions,
                track_expected=track_expected, sink=sink,
            )
        return self._run_thread(
            specs, n_rows, n_interactions,
            track_expected=track_expected, sink=sink,
        )

    def _run_thread(
        self, specs: list[tuple], n_rows: int, n_interactions: int,
        *, track_expected: bool, sink,
    ) -> FleetResult | None:
        plan = self._active_fault_plan()
        policy = self._effective_fault_policy(plan)
        supervised = policy is not None
        # supervised runs defer any sink emission until a shard's whole
        # horizon has definitely succeeded (a retried horizon must never
        # double-emit), so they keep full-width matrices even when
        # streaming — supervision costs the ring's memory saving
        width = (
            n_interactions
            if (sink is None or supervised)
            else self._result_window(n_interactions)
        )
        result_window = None if (sink is None or supervised) else width

        rewards = np.empty((n_rows, width), dtype=np.float64)
        actions_mat = np.empty((n_rows, width), dtype=np.intp)
        expected = np.empty((n_rows, width), dtype=np.float64) if track_expected else None
        expected_ok = np.full(n_rows, track_expected, dtype=bool)

        if sink is not None:
            sink.begin(n_rows, n_interactions)
            import threading

            sink_lock = threading.Lock()

            def emit(rows: np.ndarray, t: int) -> None:
                # fancy indexing copies, so the sink never aliases the ring
                tc = t if result_window is None else t % width
                exp = None if expected is None else expected[rows, tc]
                with sink_lock:
                    sink.emit(t, rows, rewards[rows, tc], exp, expected_ok[rows])

        dropped: list[DroppedShard] = []
        if supervised:
            def run_spec(si: int, spec: tuple) -> DroppedShard | None:
                key, members, rows = spec
                return self._run_shard_supervised(
                    si, key, members, rows, n_interactions,
                    track_expected=track_expected, policy=policy, plan=plan,
                    rewards=rewards, actions_mat=actions_mat,
                    expected=expected, expected_ok=expected_ok,
                )

            n_workers = min(self.n_workers, len(specs))
            if n_workers > 1:
                from concurrent.futures import ThreadPoolExecutor

                with ThreadPoolExecutor(max_workers=n_workers) as pool:
                    futures = [
                        pool.submit(run_spec, si, spec)
                        for si, spec in enumerate(specs)
                    ]
                    outcomes = [f.result() for f in futures]
            else:
                outcomes = [run_spec(si, spec) for si, spec in enumerate(specs)]
            for (key, members, rows), outcome in zip(specs, outcomes):
                if outcome is not None:
                    dropped.append(outcome)
                elif sink is not None:
                    rows_np = np.asarray(rows, dtype=np.intp)
                    for t in range(n_interactions):
                        emit(rows_np, t)
        else:
            shards = [self._build_shard(*spec) for spec in specs]
            n_workers = min(self.n_workers, len(shards))
            if n_workers > 1:
                # shards never interact — round-major interleaving across
                # shards is purely cosmetic (streams are per-agent) — so
                # each shard's *whole horizon*, plan materialization
                # included, runs as one task: no per-round barrier, no
                # per-round submit overhead; all writes land at the
                # shard's disjoint agent rows
                from concurrent.futures import ThreadPoolExecutor

                def run_shard(shard: _Shard) -> None:
                    shard.prepare(
                        n_interactions,
                        track_expected=track_expected,
                        result_window=result_window,
                    )
                    for t in range(n_interactions):
                        shard.step(t, rewards, actions_mat, expected, expected_ok)
                        if sink is not None:
                            emit(shard.indices, t)
                    shard.finish(rewards, actions_mat)

                with ThreadPoolExecutor(max_workers=n_workers) as pool:
                    for future in [pool.submit(run_shard, shard) for shard in shards]:
                        future.result()
            else:
                for shard in shards:
                    shard.prepare(
                        n_interactions,
                        track_expected=track_expected,
                        result_window=result_window,
                    )
                for t in range(n_interactions):
                    for shard in shards:
                        shard.step(t, rewards, actions_mat, expected, expected_ok)
                        if sink is not None:
                            emit(shard.indices, t)
                for shard in shards:
                    shard.finish(rewards, actions_mat)

            for shard in shards:
                shard.stacked.writeback()

        if sink is not None:
            sink.finish()
            return None
        return FleetResult(
            rewards=rewards,
            actions=actions_mat,
            expected=expected,
            expected_mask=expected_ok,
            dropped=tuple(dropped),
        )

    def _run_shard_supervised(
        self, si: int, key: tuple | None, members: list[int], rows: list[int],
        n_interactions: int, *, track_expected: bool,
        policy: FaultPolicy, plan: FaultPlan | None,
        rewards: np.ndarray, actions_mat: np.ndarray,
        expected: np.ndarray | None, expected_ok: np.ndarray,
    ) -> DroppedShard | None:
        """One shard's whole horizon under retry supervision (thread path).

        Before each attempt the shard's agents and sessions are held as
        a pickle snapshot; a failure restores them (``_adopt`` keeps the
        caller-visible object identities) and replays the whole horizon.
        The pickle round-trip preserves every RNG stream bit-exactly and
        shard horizons are deterministic given that state, so a
        successful retry is bitwise indistinguishable from a run that
        never failed.  Partial result-matrix writes of a failed attempt
        are fully overwritten by the replay (or NaN-filled by a skip).
        Returns ``None`` on success, a :class:`DroppedShard` when the
        policy degrades the shard out after exhaustion.
        """
        rows_np = np.asarray(rows, dtype=np.intp)
        agents = [self.agents[i] for i in members]
        sessions = [self.sessions[i] for i in members]
        try:
            snapshot = pickle.dumps((agents, sessions))
        except Exception as exc:  # pickle errors vary by payload
            if self.fault_policy is not None:
                raise ConfigError(
                    "fault-tolerant execution snapshots shard state by "
                    f"pickling, which this population does not support ({exc});"
                    " drop the FaultPolicy or make the population picklable"
                ) from exc
            # implicit supervision (the chaos env knob armed a plan, the
            # caller asked for nothing): an unsnapshotable shard cannot
            # be retried, so it runs clean and unsupervised — the knob
            # must harden runs, never turn a passing one into a crash
            shard = self._build_shard(key, members, rows)
            shard.prepare(n_interactions, track_expected=track_expected)
            for t in range(n_interactions):
                shard.step(t, rewards, actions_mat, expected, expected_ok)
            shard.finish(rewards, actions_mat)
            shard.stacked.writeback()
            return None
        attempt = 0
        while True:
            shard = self._build_shard(key, members, rows)
            if plan is not None:
                shard.arm_faults(plan, si, attempt)
            try:
                shard.prepare(n_interactions, track_expected=track_expected)
                for t in range(n_interactions):
                    shard.step(t, rewards, actions_mat, expected, expected_ok)
                shard.finish(rewards, actions_mat)
                shard.stacked.writeback()
                shard.arm_faults(None)
                return None
            except Exception as exc:
                shard.arm_faults(None)
                # restore the canonical objects to their pre-run state
                # (same object identities, adopted state) and drop any
                # cached stacked view of the failed attempt
                s_agents, s_sessions = pickle.loads(snapshot)
                for i, a, s in zip(members, s_agents, s_sessions):
                    self._adopt(self.agents[i], a)
                    self._adopt(self.sessions[i], s)
                if key is not None:
                    self._shards.pop(key, None)
                attempt += 1
                if attempt > policy.max_retries:
                    if policy.on_exhausted == "skip_shard":
                        rewards[rows_np] = np.nan
                        actions_mat[rows_np] = -1
                        if expected is not None:
                            expected[rows_np] = np.nan
                        expected_ok[rows_np] = False
                        return DroppedShard(
                            shard=si,
                            n_agents=len(members),
                            agent_ids=tuple(a.agent_id for a in agents),
                            attempts=attempt,
                            error=f"{type(exc).__name__}: {exc}",
                        )
                    raise WorkerError(
                        f"shard {si} ({len(members)} agents) failed on all "
                        f"{attempt} attempts (max_retries="
                        f"{policy.max_retries}): {type(exc).__name__}: {exc}; "
                        "the shard's agents were restored to their last good "
                        "state — retry with a higher budget or use "
                        "on_exhausted='skip_shard' to degrade instead"
                    ) from exc
                if policy.backoff:
                    time.sleep(policy.sleep_for(attempt - 1))

    # ------------------------------------------------------------------ #
    def _run_process(
        self, specs: list[tuple], n_rows: int, n_interactions: int,
        *, track_expected: bool, sink=None,
    ) -> FleetResult | None:
        """Process-pool escape hatch: one whole-horizon task per shard.

        Shards never interact, so instead of a per-round barrier each
        worker runs its shard start to finish and returns the mutated
        population; the parent merges result rows and adopts the state
        back into the caller-visible objects.  With a ``sink`` the
        parent never materializes the global matrices — each returned
        shard's columns are emitted then dropped (the workers still
        build per-shard matrices; the streaming saving here is the
        parent-side O(n x T), not the workers').

        Supervision is simpler here than on the thread path: workers
        mutate *copies*, so the parent's objects stay good until a
        shard's result is adopted — a failed shard just resubmits its
        immutable payload.  A dead worker process poisons its whole
        ``ProcessPoolExecutor`` (every in-flight future raises
        ``BrokenProcessPool``); the supervisor replaces the executor
        once per round of failures and the poisoned victims retry from
        their payloads.  Without a policy, failures propagate as-is
        (the historical fail-fast behavior).

        On platforms with POSIX shared memory (and unless disabled via
        ``REPRO_NO_SHM``) the matrices workers write and the per-dataset
        row tables they read live in :mod:`repro.sim.shm` blocks:
        payloads carry descriptors plus each shard's global row
        indices, workers write results in place, and the return trip
        is only the mutated population.  Blocks are created here and
        unlinked here — exactly once, normal exit, degraded exit or
        crash alike.  Results are bit-identical on either protocol.
        """
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        from .shm import ShmPool, shm_dumps, shm_enabled, shm_loads

        plan = self._active_fault_plan()
        policy = self._effective_fault_policy(plan)
        spec_str = None if plan is None else plan.to_spec()

        # workers ship back state-equal *replacement* component objects
        # (_adopt rebinds agent.policy etc.), so any cached shard's
        # stacked references would go stale — drop them
        for key, _, _ in specs:
            if key is not None:
                self._shards.pop(key, None)

        shm_pool: ShmPool | None = ShmPool() if shm_enabled() else None
        try:
            return self._run_process_inner(
                specs, n_rows, n_interactions,
                track_expected=track_expected, sink=sink,
                shm_pool=shm_pool, spec_str=spec_str, policy=policy,
                executor_cls=ProcessPoolExecutor,
                broken_pool_exc=BrokenProcessPool,
                dumps=shm_dumps, loads=shm_loads,
            )
        finally:
            if shm_pool is not None:
                shm_pool.close()

    def _run_process_inner(
        self, specs: list[tuple], n_rows: int, n_interactions: int,
        *, track_expected: bool, sink, shm_pool, spec_str, policy,
        executor_cls, broken_pool_exc, dumps, loads,
    ) -> FleetResult | None:
        """Body of :meth:`_run_process` (split out so the shared-memory
        pool's unlink-exactly-once ``finally`` wraps everything)."""
        # global result matrices in shared memory: workers write their
        # shard's rows directly, the thread backend's memory model.
        # Streaming runs keep the legacy per-shard return protocol (the
        # parent-side saving there is *not* materializing O(n x T)).
        shm_results = None
        if shm_pool is not None and sink is None:
            try:
                shm_results = (
                    shm_pool.empty((n_rows, n_interactions), np.float64),
                    shm_pool.empty((n_rows, n_interactions), np.intp),
                    shm_pool.empty((n_rows, n_interactions), np.float64)
                    if track_expected
                    else None,
                    shm_pool.empty((n_rows,), np.bool_),
                )
                shm_results[3][:] = track_expected
            except OSError:  # /dev/shm full or restricted: fall back
                shm_results = None
        if shm_pool is not None:
            # mirror each dataset's shared row tables once — every
            # session over that dataset then ships a descriptor instead
            # of the tables' bytes (the tables alias dataset storage,
            # so this also dedupes the dataset arrays themselves)
            for _, members, _ in specs:
                for i in members:
                    session = self.sessions[i]
                    if not getattr(session, "has_indexed_trace_plan", False):
                        continue
                    try:
                        table = session.trace_row_table()
                        shm_pool.share(table.contexts)
                        shm_pool.share(table.action_rewards)
                        if table.expected is not None:
                            shm_pool.share(table.expected)
                    except OSError:  # /dev/shm full: pickle by value
                        break

        result_refs = None
        if shm_results is not None:
            rewards_g, actions_g, expected_g, ok_g = shm_results
            result_refs = (
                shm_pool.ref_for(rewards_g),
                shm_pool.ref_for(actions_g),
                None if expected_g is None else shm_pool.ref_for(expected_g),
                shm_pool.ref_for(ok_g),
            )

        payloads = []
        for _, members, rows in specs:
            try:
                payloads.append(
                    dumps(
                        (
                            [self.agents[i] for i in members],
                            [self.sessions[i] for i in members],
                            n_interactions,
                            track_expected,
                            self.plan_chunk_size,
                            self.plan_form,
                            self.exactness,
                            self.kernel_block_size,
                            result_refs,
                            np.asarray(rows, dtype=np.intp),
                        ),
                        shm_pool,
                    )
                )
            except Exception as exc:  # pickle errors vary by payload
                raise ConfigError(
                    "worker_backend='process' requires a picklable population "
                    f"(pickling a shard failed: {exc}); use the thread backend"
                ) from exc

        outputs: dict[int, tuple] = {}
        dropped: dict[int, DroppedShard] = {}
        attempts = [0] * len(specs)
        queue = list(range(len(specs)))
        n_workers = min(self.n_workers, len(payloads))
        pool = executor_cls(max_workers=n_workers)
        # after a pool breakage, fall back to one shard in flight at a
        # time: a dead worker poisons every pending future on the
        # executor with BrokenProcessPool, so in a batch round the
        # exception cannot be attributed to the shard that actually
        # crashed — collateral victims must not be charged retry budget
        # (a crashing sibling could otherwise exhaust an innocent
        # shard's retries, making drops racy).  Solo, a breakage is
        # unambiguously the running shard's own.
        solo = False
        try:
            while queue:
                batch, queue = (queue[:1], queue[1:]) if solo else (queue, [])
                futures = {
                    si: pool.submit(
                        _run_shard_remote,
                        payloads[si],
                        None
                        if spec_str is None
                        else (spec_str, si, attempts[si]),
                    )
                    for si in batch
                }
                pool_broken = False
                retry_wait = 0.0
                for si, future in futures.items():
                    try:
                        outputs[si] = loads(future.result(), shm_pool)
                        continue
                    except Exception as exc:
                        if policy is None:
                            raise  # fail-fast: the historical behavior
                        if isinstance(exc, broken_pool_exc):
                            pool_broken = True
                            if not solo:
                                # collateral damage: requeue uncharged;
                                # the solo rounds below identify and
                                # charge the real culprit
                                queue.append(si)
                                continue
                        failure = exc
                    attempts[si] += 1
                    members = specs[si][1]
                    if attempts[si] > policy.max_retries:
                        if policy.on_exhausted == "skip_shard":
                            dropped[si] = DroppedShard(
                                shard=si,
                                n_agents=len(members),
                                agent_ids=tuple(
                                    self.agents[i].agent_id for i in members
                                ),
                                attempts=attempts[si],
                                error=f"{type(failure).__name__}: {failure}",
                            )
                        else:
                            raise WorkerError(
                                f"shard {si} ({len(members)} agents) failed in "
                                f"a worker process on all {attempts[si]} "
                                f"attempts (max_retries={policy.max_retries}):"
                                f" {type(failure).__name__}: {failure}; the "
                                "parent's population is untouched (workers "
                                "mutate copies) — retry with a higher budget "
                                "or use on_exhausted='skip_shard'"
                            ) from failure
                    else:
                        queue.append(si)
                        retry_wait = max(
                            retry_wait, policy.sleep_for(attempts[si] - 1)
                        )
                if pool_broken:
                    # a dead worker poisons the whole executor — replace
                    # it and switch to solo submission for the rest of
                    # the run; queued shards rerun from their immutable
                    # payloads (charged shards with the incremented
                    # attempt number), and the fresh workers re-attach
                    # any shared blocks by name: the parent has not
                    # unlinked them yet
                    solo = True
                    pool.shutdown(wait=True, cancel_futures=True)
                    pool = executor_cls(max_workers=n_workers)
                if queue and retry_wait:
                    time.sleep(retry_wait)
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

        if sink is None:
            if shm_results is not None:
                rewards, actions_mat, expected, expected_ok = shm_results
            else:
                rewards = np.empty((n_rows, n_interactions), dtype=np.float64)
                actions_mat = np.empty((n_rows, n_interactions), dtype=np.intp)
                expected = (
                    np.empty((n_rows, n_interactions), dtype=np.float64)
                    if track_expected
                    else None
                )
                expected_ok = np.full(n_rows, track_expected, dtype=bool)
        else:
            sink.begin(n_rows, n_interactions)

        for si, (key, members, rows) in enumerate(specs):
            rows_np = np.asarray(rows, dtype=np.intp)
            if si in dropped:
                if sink is None:
                    rewards[rows_np] = np.nan
                    actions_mat[rows_np] = -1
                    if expected is not None:
                        expected[rows_np] = np.nan
                    expected_ok[rows_np] = False
                continue
            if shm_results is not None:
                # results already landed at this shard's rows in the
                # shared matrices; only the population came back
                s_agents, s_sessions = outputs[si]
            else:
                s_rewards, s_actions, s_expected, s_ok, s_agents, s_sessions = (
                    outputs[si]
                )
                if sink is None:
                    rewards[rows_np] = s_rewards
                    actions_mat[rows_np] = s_actions
                    if expected is not None and s_expected is not None:
                        expected[rows_np] = s_expected
                    expected_ok[rows_np] = s_ok
                else:
                    for t in range(n_interactions):
                        sink.emit(
                            t,
                            rows_np,
                            s_rewards[:, t],
                            None if s_expected is None else s_expected[:, t],
                            s_ok,
                        )
            for i, agent, session in zip(members, s_agents, s_sessions):
                self._adopt(self.agents[i], agent)
                self._adopt(self.sessions[i], session)
        if sink is not None:
            sink.finish()
            return None
        if shm_results is not None:
            # copy out of the blocks before the caller's finally unlinks
            # them — the returned result must outlive the pool
            rewards = np.array(rewards)
            actions_mat = np.array(actions_mat)
            expected = None if expected is None else np.array(expected)
            expected_ok = np.array(expected_ok)
        return FleetResult(
            rewards=rewards,
            actions=actions_mat,
            expected=expected,
            expected_mask=expected_ok,
            dropped=tuple(dropped[si] for si in sorted(dropped)),
        )

    # ------------------------------------------------------------------ #
    # checkpoint / resume
    def _engine_dict(self) -> dict:
        """The engine knobs a checkpoint must restore to replay exactly."""
        return {
            "n_workers": self.n_workers,
            "worker_backend": self.worker_backend,
            "plan_chunk_size": self.plan_chunk_size,
            "plan_form": self.plan_form,
            "exactness": self.exactness,
            "kernel_block_size": self.kernel_block_size,
            "persistent": self.persistent,
        }

    def checkpoint(
        self,
        path,
        *,
        completed: int = 0,
        n_interactions: int = 0,
        track_expected: bool = False,
        rewards: np.ndarray | None = None,
        actions: np.ndarray | None = None,
        expected: np.ndarray | None = None,
        expected_ok: np.ndarray | None = None,
        checkpoint_every: int | None = None,
        context: bytes | None = None,
        dropped: Sequence = (),
    ) -> None:
        """Write a versioned on-disk snapshot of this fleet to ``path``.

        The snapshot carries the pickled population — every agent with
        its policy state, RNG streams, participation counters and
        pending report outbox, and every session with its walk cursors —
        plus this runner's engine knobs and, for an in-flight run, the
        partial result matrices and progress cursor.  Writes are atomic
        (temp file + ``os.replace``), so a crash mid-write leaves the
        previous snapshot intact.  :meth:`run` calls this automatically
        at ``checkpoint_every`` boundaries; calling it directly gives a
        resumable between-runs snapshot (``completed=0``).
        """
        from .checkpoint import FleetCheckpoint, save_checkpoint

        n = len(self.agents)
        try:
            population = pickle.dumps((self.agents, self.sessions))
        except Exception as exc:  # pickle errors vary by payload
            raise CheckpointError(
                "checkpointing pickles the population, which failed: "
                f"{exc}; every built-in agent/session is picklable"
            ) from exc
        save_checkpoint(
            path,
            FleetCheckpoint(
                completed=int(completed),
                n_interactions=int(n_interactions or completed),
                track_expected=bool(track_expected),
                rewards=(
                    np.empty((n, 0), dtype=np.float64) if rewards is None else rewards
                ),
                actions=(
                    np.empty((n, 0), dtype=np.intp) if actions is None else actions
                ),
                expected=expected,
                expected_ok=(
                    np.zeros(n, dtype=bool) if expected_ok is None else expected_ok
                ),
                population=population,
                engine=self._engine_dict(),
                checkpoint_every=checkpoint_every,
                context=context,
                dropped=tuple(dropped),
            ),
        )

    @classmethod
    def resume(
        cls,
        path,
        *,
        fault_policy: FaultPolicy | None = None,
        fault_plan: "FaultPlan | str | None" = None,
    ) -> "FleetRunner":
        """Rebuild a fleet from a snapshot written by :meth:`checkpoint`.

        The returned runner holds the unpickled population (identical
        RNG streams, counters, outboxes) under the engine knobs the
        snapshot was taken with; when the snapshot was mid-run,
        :meth:`resume_run` finishes that run bit-identically to the
        uninterrupted one.  Supervision knobs are per-process, not part
        of the snapshot — pass them here if the resumed run should be
        supervised too.
        """
        from .checkpoint import load_checkpoint

        ckpt = load_checkpoint(path)
        try:
            agents, sessions = pickle.loads(ckpt.population)
        except Exception as exc:
            raise CheckpointError(
                f"checkpoint {str(path)!r} holds an unreadable population "
                f"pickle: {exc}"
            ) from exc
        engine = dict(ckpt.engine)
        runner = cls(
            agents,
            sessions,
            n_workers=int(engine.get("n_workers", 1)),
            worker_backend=engine.get("worker_backend", "thread"),
            plan_chunk_size=engine.get("plan_chunk_size"),
            plan_form=engine.get("plan_form", "auto"),
            exactness=engine.get("exactness", "bit"),
            kernel_block_size=engine.get("kernel_block_size"),
            persistent=bool(engine.get("persistent", False)),
            fault_policy=fault_policy,
            fault_plan=fault_plan,
        )
        runner._resume_ckpt = ckpt
        runner._resume_path = path
        return runner

    @property
    def resume_context(self) -> bytes | None:
        """The caller context blob of the loaded snapshot (after :meth:`resume`)."""
        return None if self._resume_ckpt is None else self._resume_ckpt.context

    def resume_run(
        self,
        *,
        checkpoint_path=None,
        checkpoint_every: int | None = None,
    ) -> FleetResult:
        """Finish the in-flight run this fleet was :meth:`resume`-d from.

        Runs the remaining ``n_interactions - completed`` rounds —
        continuing to checkpoint at the snapshot's cadence (overridable
        here) — and returns the *full-horizon* result: the snapshot's
        completed columns concatenated with the freshly run ones,
        bit-identical to the run that was never interrupted.
        """
        ckpt = self._resume_ckpt
        if ckpt is None:
            raise CheckpointError(
                "resume_run() needs a runner built by FleetRunner.resume(path) "
                "whose run has not been finished yet"
            )
        self._resume_ckpt = None
        path = self._resume_path if checkpoint_path is None else checkpoint_path
        every = ckpt.checkpoint_every if checkpoint_every is None else checkpoint_every
        remaining = ckpt.n_interactions - ckpt.completed
        if remaining <= 0:
            return FleetResult(
                rewards=ckpt.rewards,
                actions=ckpt.actions,
                expected=ckpt.expected,
                expected_mask=ckpt.expected_ok,
                dropped=ckpt.dropped,
            )
        return self._run_checkpointed(
            ckpt.n_interactions,
            track_expected=ckpt.track_expected,
            every=min(every or remaining, remaining),
            path=path,
            context=ckpt.context,
            prefix=ckpt,
        )

    def _run_checkpointed(
        self, n_total: int, *, track_expected: bool, every: int,
        path, context: bytes | None, prefix,
    ) -> FleetResult:
        """Execute a horizon in ``every``-round segments, snapshotting each.

        Segmented execution composes bit-identically with one full run —
        the plan contract makes slice-by-slice planning exact, and
        ``finish`` leaves agents in the sequential state at every
        boundary (the segmented-composition property ``tests/sim`` pins)
        — so the concatenated columns equal the uninterrupted run's.
        ``prefix`` (a loaded ``FleetCheckpoint``) seeds completed
        columns when resuming; ``expected_mask`` is ANDed across
        segments, matching the matrix path's whole-row masking.
        """
        completed = 0 if prefix is None else int(prefix.completed)
        parts_r = [] if prefix is None else [prefix.rewards]
        parts_a = [] if prefix is None else [prefix.actions]
        parts_e = (
            [] if prefix is None or prefix.expected is None else [prefix.expected]
        )
        ok = None if prefix is None else np.asarray(prefix.expected_ok, dtype=bool)
        dropped = [] if prefix is None else list(prefix.dropped)
        while completed < n_total:
            seg = min(every, n_total - completed)
            res = self._dispatch(
                self._full_specs(),
                len(self.agents),
                seg,
                track_expected=track_expected,
                sink=None,
            )
            parts_r.append(res.rewards)
            parts_a.append(res.actions)
            if res.expected is not None:
                parts_e.append(res.expected)
            ok = res.expected_mask if ok is None else (ok & res.expected_mask)
            dropped.extend(res.dropped)
            completed += seg
            rewards = np.concatenate(parts_r, axis=1)
            actions = np.concatenate(parts_a, axis=1)
            expected = np.concatenate(parts_e, axis=1) if parts_e else None
            self.checkpoint(
                path,
                completed=completed,
                n_interactions=n_total,
                track_expected=track_expected,
                rewards=rewards,
                actions=actions,
                expected=expected,
                expected_ok=ok,
                checkpoint_every=every,
                context=context,
                dropped=dropped,
            )
        return FleetResult(
            rewards=rewards,
            actions=actions,
            expected=expected,
            expected_mask=ok,
            dropped=tuple(dropped),
        )

    @staticmethod
    def _adopt(mine, theirs) -> None:
        """Adopt a worker-mutated object's state into the caller's object.

        Keeps the caller-visible object identity (the ``LocalAgent`` /
        session instances the caller constructed) while taking every
        attribute — policy state, outbox, participation budget, walk
        cursors, generator state — from the worker's copy.  Component
        objects hanging off the adopted one (``agent.policy``, a
        session's dataset reference) are *rebound* to the worker's
        copies; that is the documented process-backend caveat.
        """
        mine.__dict__.clear()
        mine.__dict__.update(theirs.__dict__)

    # ------------------------------------------------------------------ #
    def drain_outboxes(self) -> list[EncodedReport | RawReport]:
        """Drain every agent's outbox, in agent order (the batched send).

        Equivalent to concatenating per-agent
        :meth:`~repro.core.agent.LocalAgent.drain_outbox` calls — same
        reports, same metadata, same order — which ``tests/sim`` pins
        through the shuffler.
        """
        reports: list[EncodedReport | RawReport] = []
        for agent in self.agents:
            reports.extend(agent.drain_outbox())
        return reports
