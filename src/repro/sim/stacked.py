"""Stacked per-agent policy state for the fleet engine.

A stacked policy holds the state of ``n`` *independent* policy
instances as arrays with a leading agent axis — e.g. LinUCB's design
inverses as ``(n_agents, n_arms, d, d)`` — and steps all agents per
round with one kernel call instead of ``n`` Python calls.

Exactness contract (see :mod:`repro.sim`): every floating-point
operation here is the *same* :mod:`repro.bandits.kernels` einsum or the
same elementwise expression the scalar policy performs, applied with a
broadcast leading axis.  Randomness is never batched: each agent's
tie-breaks and exploration coins are drawn from that agent's own
generator, in the same within-agent order as the sequential path, so
stacked and sequential runs consume identical streams.

Concurrency: a stacked policy is confined to its shard — its arrays,
generators and policy objects belong to that shard's agents alone — so
:class:`~repro.sim.fleet.FleetRunner`'s parallel shard stepping
(``n_workers > 1``) never has two threads inside the same stacked
state; the numpy kernels additionally release the GIL, which is what
makes thread-level shard parallelism pay.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from ..bandits.base import BanditPolicy, argmax_random_tiebreak
from ..bandits.code_linucb import CodeLinUCB
from ..bandits.epsilon_greedy import EpsilonGreedy
from ..bandits.kernels import linear_scores, mat_vec, sherman_morrison, ucb_explore, vec_dot
from ..bandits.linucb import LinUCB
from ..bandits.thompson import LinearThompsonSampling
from ..bandits.ucb1 import UCB1
from ..utils.exceptions import ConfigError

__all__ = [
    "StackedPolicies",
    "StackedLinUCB",
    "StackedEpsilonGreedy",
    "StackedThompson",
    "StackedCodeLinUCB",
    "StackedUCB1",
    "stack_policies",
    "policies_stackable",
]


def _tiebreak_rows(
    scores: np.ndarray, rngs: Sequence[np.random.Generator]
) -> np.ndarray:
    """Row-wise :func:`argmax_random_tiebreak` with per-row generators.

    Rows with a unique maximum take the vectorized argmax and consume
    no randomness — exactly like the scalar helper.  Only tied rows
    fall back to that row's generator, with the same ``choice`` call.
    """
    row_max = scores.max(axis=1)
    is_max = scores == row_max[:, None]
    actions = scores.argmax(axis=1).astype(np.intp)
    for i in np.flatnonzero(is_max.sum(axis=1) > 1):
        best = is_max[i].nonzero()[0]
        # one integers draw == rng.choice(best) on the stream (see
        # argmax_random_tiebreak), so tied rows stay bit-identical
        actions[i] = int(best[rngs[i].integers(0, best.size)])
    return actions


def _uniform(values, what: str):
    """Assert all agents share a hyperparameter; return the shared value."""
    first = values[0]
    if any(v != first for v in values[1:]):
        raise ConfigError(f"cannot stack policies with differing {what}: {sorted(set(values))}")
    return first


class StackedPolicies(abc.ABC):
    """Base class: ``n`` same-kind policies as one stacked state.

    Subclasses stack in ``__init__``, mutate only their stacked arrays
    during the run, and copy state back into the policy objects in
    :meth:`writeback`.  The policy objects' generators are used in
    place throughout, so their streams are already advanced correctly
    when writeback happens.
    """

    #: True when the stacked select/update consume integer codes
    #: (one-hot specialists) rather than dense context rows.
    wants_codes: bool = False

    def __init__(self, policies: Sequence[BanditPolicy]) -> None:
        policies = list(policies)
        if not policies:
            raise ConfigError("cannot stack an empty policy list")
        kinds = {type(p) for p in policies}
        if len(kinds) != 1:
            raise ConfigError(
                f"cannot stack mixed policy types: {sorted(c.__name__ for c in kinds)}"
            )
        self.policies = policies
        self.n_agents = len(policies)
        self.n_arms = _uniform([p.n_arms for p in policies], "n_arms")
        self.n_features = _uniform([p.n_features for p in policies], "n_features")
        self.rngs = [p._rng for p in policies]
        self.t = np.array([p.t for p in policies], dtype=np.int64)

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def select(self, contexts: np.ndarray) -> np.ndarray:
        """One action per agent for that agent's context row."""

    @abc.abstractmethod
    def update(self, contexts: np.ndarray, actions: np.ndarray, rewards: np.ndarray) -> None:
        """One update per agent (row ``i`` updates agent ``i``'s state)."""

    @abc.abstractmethod
    def writeback(self) -> None:
        """Copy stacked state back into the underlying policy objects."""

    def _writeback_t(self) -> None:
        for i, p in enumerate(self.policies):
            p.t = int(self.t[i])


class _StackedDenseLinear(StackedPolicies):
    """Shared stacking for the dense ridge family (LinUCB, eps-greedy)."""

    def __init__(self, policies: Sequence[BanditPolicy]) -> None:
        super().__init__(policies)
        self.ridge = _uniform([p.ridge for p in policies], "ridge")
        self.A_inv = np.stack([p.A_inv for p in policies])  # (n, k, d, d)
        self.b = np.stack([p.b for p in policies])  # (n, k, d)
        self.theta = np.stack([p.theta for p in policies])  # (n, k, d)

    def _dense_update(
        self, contexts: np.ndarray, actions: np.ndarray, rewards: np.ndarray
    ) -> None:
        idx = np.arange(self.n_agents)
        A_sel = self.A_inv[idx, actions]  # gather copies (n, d, d)
        sherman_morrison(A_sel, contexts)
        b_sel = self.b[idx, actions]
        b_sel += rewards[:, None] * contexts
        self.A_inv[idx, actions] = A_sel
        self.b[idx, actions] = b_sel
        self.theta[idx, actions] = mat_vec(A_sel, b_sel)
        self.t += 1

    def _writeback_dense(self) -> None:
        for i, p in enumerate(self.policies):
            p.A_inv = self.A_inv[i].copy()
            p.b = self.b[i].copy()
            p.theta = self.theta[i].copy()
        self._writeback_t()


class StackedLinUCB(_StackedDenseLinear):
    """``n`` independent :class:`~repro.bandits.linucb.LinUCB` agents."""

    def __init__(self, policies: Sequence[LinUCB]) -> None:
        super().__init__(policies)
        self.alpha = _uniform([p.alpha for p in policies], "alpha")
        self.arm_counts = np.stack([p.arm_counts for p in policies])

    def scores(self, contexts: np.ndarray) -> np.ndarray:
        means = linear_scores(self.theta, contexts)
        explore = ucb_explore(contexts, self.A_inv)
        return means + self.alpha * np.sqrt(explore)

    def select(self, contexts: np.ndarray) -> np.ndarray:
        return _tiebreak_rows(self.scores(contexts), self.rngs)

    def update(self, contexts, actions, rewards) -> None:
        self._dense_update(contexts, actions, rewards)
        self.arm_counts[np.arange(self.n_agents), actions] += 1

    def writeback(self) -> None:
        for i, p in enumerate(self.policies):
            p.arm_counts = self.arm_counts[i].copy()
        self._writeback_dense()


class StackedEpsilonGreedy(_StackedDenseLinear):
    """``n`` independent :class:`~repro.bandits.epsilon_greedy.EpsilonGreedy` agents."""

    def __init__(self, policies: Sequence[EpsilonGreedy]) -> None:
        super().__init__(policies)
        self.decay = _uniform([p.decay for p in policies], "decay")
        # epsilon is *state* (it decays), so it stays per-agent
        self.epsilon = np.array([p.epsilon for p in policies], dtype=np.float64)

    def select(self, contexts: np.ndarray) -> np.ndarray:
        scores = linear_scores(self.theta, contexts)
        actions = np.empty(self.n_agents, dtype=np.intp)
        for i in range(self.n_agents):
            rng = self.rngs[i]
            if rng.random() < self.epsilon[i]:
                actions[i] = int(rng.integers(self.n_arms))
            else:
                actions[i] = argmax_random_tiebreak(scores[i], rng)
        return actions

    def update(self, contexts, actions, rewards) -> None:
        self._dense_update(contexts, actions, rewards)
        self.epsilon *= self.decay

    def writeback(self) -> None:
        for i, p in enumerate(self.policies):
            p.epsilon = float(self.epsilon[i])
        self._writeback_dense()


class StackedThompson(_StackedDenseLinear):
    """``n`` independent :class:`~repro.bandits.thompson.LinearThompsonSampling` agents.

    All O(d²) work — Cholesky refresh, posterior-mean shifts, scoring,
    Sherman–Morrison — runs stacked; only the posterior draws stay in a
    thin per-agent loop, because each draw must come from that agent's
    own generator.  One ``standard_normal((A, d))`` fill per agent
    consumes the stream in exactly the arm-major order the scalar
    policy's per-arm loop does (the stream order
    :class:`~repro.bandits.thompson.LinearThompsonSampling` defines), so
    Thompson joins the bit-identity contract instead of breaking it.
    """

    def __init__(self, policies: Sequence[LinearThompsonSampling]) -> None:
        super().__init__(policies)
        self.v = _uniform([p.v for p in policies], "v")
        self.chol = np.stack([p._chol for p in policies])  # (n, A, d, d)
        self.chol_fresh = np.stack([p._chol_fresh for p in policies])  # (n, A)

    def _refresh_chol(self) -> None:
        """Batched equivalent of the scalar lazy per-arm refresh.

        The scalar policy refreshes every stale arm (consuming no RNG)
        at the top of each selection; here all stale ``(agent, arm)``
        pairs refresh in one gufunc call — numpy's batched ``cholesky``
        runs the same LAPACK factorization per matrix, so the factors
        are bitwise those of the scalar path.
        """
        stale = ~self.chol_fresh
        if not stale.any():
            return
        rows, arms = np.nonzero(stale)
        try:
            self.chol[rows, arms] = np.linalg.cholesky(self.A_inv[rows, arms])
        except np.linalg.LinAlgError:
            # mirror the scalar fallback per matrix: jitter only the
            # matrices that actually fail
            jitter = 1e-10 * np.eye(self.n_features)
            for i, a in zip(rows, arms):
                try:
                    self.chol[i, a] = np.linalg.cholesky(self.A_inv[i, a])
                except np.linalg.LinAlgError:
                    self.chol[i, a] = np.linalg.cholesky(self.A_inv[i, a] + jitter)
        self.chol_fresh[rows, arms] = True

    def sample_scores(self, contexts: np.ndarray) -> np.ndarray:
        self._refresh_chol()
        Z = np.empty((self.n_agents, self.n_arms, self.n_features))
        for i, rng in enumerate(self.rngs):
            Z[i] = rng.standard_normal((self.n_arms, self.n_features))
        theta_tilde = self.theta + self.v * mat_vec(self.chol, Z)
        return vec_dot(theta_tilde, contexts[:, None, :])

    def select(self, contexts: np.ndarray) -> np.ndarray:
        return _tiebreak_rows(self.sample_scores(contexts), self.rngs)

    def update(self, contexts, actions, rewards) -> None:
        self._dense_update(contexts, actions, rewards)
        self.chol_fresh[np.arange(self.n_agents), actions] = False

    def writeback(self) -> None:
        for i, p in enumerate(self.policies):
            p._chol = self.chol[i].copy()
            p._chol_fresh = self.chol_fresh[i].copy()
        self._writeback_dense()


class StackedCodeLinUCB(StackedPolicies):
    """``n`` independent :class:`~repro.bandits.code_linucb.CodeLinUCB` agents.

    Operates on integer codes directly (``wants_codes``): the one-hot
    detour the scalar interface takes is a pure re-derivation of the
    code, so skipping it changes nothing observable.
    """

    wants_codes = True

    def __init__(self, policies: Sequence[CodeLinUCB]) -> None:
        super().__init__(policies)
        self.alpha = _uniform([p.alpha for p in policies], "alpha")
        self.ridge = _uniform([p.ridge for p in policies], "ridge")
        self.counts = np.stack([p.counts for p in policies])  # (n, A, k)
        self.sums = np.stack([p.sums for p in policies])  # (n, A, k)

    def scores_for_codes(self, codes: np.ndarray) -> np.ndarray:
        idx = np.arange(self.n_agents)
        counts_g = self.counts[idx, :, codes]  # (n, A)
        sums_g = self.sums[idx, :, codes]
        denom = self.ridge + counts_g
        means = sums_g / denom
        return means + self.alpha * np.sqrt(1.0 / denom)

    def select(self, codes: np.ndarray) -> np.ndarray:
        return _tiebreak_rows(self.scores_for_codes(codes), self.rngs)

    def update(self, codes, actions, rewards) -> None:
        idx = np.arange(self.n_agents)
        self.counts[idx, actions, codes] += 1.0
        self.sums[idx, actions, codes] += rewards
        self.t += 1

    def writeback(self) -> None:
        for i, p in enumerate(self.policies):
            p.counts = self.counts[i].copy()
            p.sums = self.sums[i].copy()
        self._writeback_t()


class StackedUCB1(StackedPolicies):
    """``n`` independent :class:`~repro.bandits.ucb1.UCB1` agents (context-free)."""

    def __init__(self, policies: Sequence[UCB1]) -> None:
        super().__init__(policies)
        self.c = _uniform([p.c for p in policies], "c")
        self.counts = np.stack([p.counts for p in policies])  # (n, A) int64
        self.sums = np.stack([p.sums for p in policies])  # (n, A)

    def scores(self) -> np.ndarray:
        scores = np.full((self.n_agents, self.n_arms), np.inf)
        played = self.counts > 0
        if played.any():
            means = np.zeros_like(self.sums)
            np.divide(self.sums, self.counts, out=means, where=played)
            total = np.maximum(self.t, 1).astype(np.float64)
            log_over_n = np.zeros_like(self.sums)
            np.divide(np.log(total)[:, None], self.counts, out=log_over_n, where=played)
            bonus = self.c * np.sqrt(log_over_n)
            scores[played] = means[played] + bonus[played]
        return scores

    def select(self, contexts: np.ndarray | None = None) -> np.ndarray:
        return _tiebreak_rows(self.scores(), self.rngs)

    def update(self, contexts, actions, rewards) -> None:
        idx = np.arange(self.n_agents)
        self.counts[idx, actions] += 1
        self.sums[idx, actions] += rewards
        self.t += 1

    def writeback(self) -> None:
        for i, p in enumerate(self.policies):
            p.counts = self.counts[i].copy()
            p.sums = self.sums[i].copy()
        self._writeback_t()


_STACKERS: dict[str, type[StackedPolicies]] = {
    LinUCB.kind: StackedLinUCB,
    EpsilonGreedy.kind: StackedEpsilonGreedy,
    LinearThompsonSampling.kind: StackedThompson,
    CodeLinUCB.kind: StackedCodeLinUCB,
    UCB1.kind: StackedUCB1,
}


def policies_stackable(policies: Sequence[BanditPolicy]) -> bool:
    """Whether :func:`stack_policies` would accept this population.

    Stackability is exactly "every policy shares one non-``None``
    :meth:`~repro.bandits.base.BanditPolicy.fleet_key`": same kind, same
    shapes, same hyperparameters.  Populations that merely *mix* keys
    are not stackable into one state, but the sharded fleet engine
    (:func:`repro.sim.fleet.shard_indices`) still runs them — one
    stacked state per key.
    """
    policies = list(policies)
    if not policies:
        return False
    first = type(policies[0])
    if not all(type(p) is first for p in policies):
        return False
    key = policies[0].fleet_key()
    if key is None or policies[0].kind not in _STACKERS:
        return False
    return all(p.fleet_key() == key for p in policies[1:])


def stack_policies(policies: Sequence[BanditPolicy]) -> StackedPolicies:
    """Stack a homogeneous policy population for the fleet engine."""
    policies = list(policies)
    if not policies:
        raise ConfigError("cannot stack an empty policy list")
    kind = policies[0].kind
    if kind not in _STACKERS or not policies[0].supports_fleet:
        raise ConfigError(
            f"policy kind {kind!r} does not support fleet stacking; "
            f"stackable kinds: {sorted(_STACKERS)}"
        )
    return _STACKERS[kind](policies)
