"""Stacked per-agent policy state for the fleet engine.

A stacked policy holds the state of ``n`` *independent* policy
instances as arrays with a leading agent axis — e.g. LinUCB's design
inverses as ``(n_agents, n_arms, d, d)`` — and steps all agents per
round with one kernel call instead of ``n`` Python calls.

Exactness contract (see :mod:`repro.sim`): every floating-point
operation here is the *same* :mod:`repro.bandits.kernels` einsum or the
same elementwise expression the scalar policy performs, applied with a
broadcast leading axis.  Randomness is never batched: each agent's
tie-breaks and exploration coins are drawn from that agent's own
generator, in the same within-agent order as the sequential path, so
stacked and sequential runs consume identical streams.

Concurrency: a stacked policy is confined to its shard — its arrays,
generators and policy objects belong to that shard's agents alone — so
:class:`~repro.sim.fleet.FleetRunner`'s parallel shard stepping
(``n_workers > 1``) never has two threads inside the same stacked
state; the numpy kernels additionally release the GIL, which is what
makes thread-level shard parallelism pay.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from ..bandits.base import BanditPolicy, argmax_random_tiebreak
from ..bandits.code_linucb import CodeLinUCB
from ..bandits.epsilon_greedy import EpsilonGreedy
from ..bandits.kernels import (
    auto_block_size,
    linear_scores,
    mat_vec,
    sherman_morrison,
    sm_quad_downdate,
    theta_refresh,
    ucb_explore,
    ucb_explore_fast,
    vec_dot,
)
from ..bandits.linucb import LinUCB
from ..bandits.thompson import LinearThompsonSampling
from ..bandits.ucb1 import UCB1
from ..utils.exceptions import ConfigError

__all__ = [
    "StackedPolicies",
    "StackedLinUCB",
    "StackedLinUCBFast",
    "StackedEpsilonGreedy",
    "StackedThompson",
    "StackedThompsonFast",
    "StackedCodeLinUCB",
    "StackedCodeLinUCBFast",
    "StackedUCB1",
    "stack_policies",
    "policies_stackable",
    "EXACTNESS_TIERS",
]

#: recognized exactness tiers for stacked policy state: ``bit`` (the
#: default) keeps every stacked operation bit-identical to the scalar
#: policies; ``fast`` trades bit-identity for memory and speed — policy
#: kinds with a fast stacker (:class:`StackedCodeLinUCBFast`'s float32
#: sparse tables, :class:`StackedLinUCBFast`'s float32 dense posteriors
#: with incremental UCB, :class:`StackedThompsonFast`'s shard-batched
#: posterior draws) produce trajectories that are *statistically*
#: equivalent to the bit tier (same math up to float32 rounding / draw
#: stream regrouping, and the tie-breaks those can flip); kinds without
#: a fast stacker run their bit stacker unchanged, so ``fast``
#: degenerates to ``bit`` for them.
EXACTNESS_TIERS = ("bit", "fast")


def _tiebreak_rows(
    scores: np.ndarray, rngs: Sequence[np.random.Generator]
) -> np.ndarray:
    """Row-wise :func:`argmax_random_tiebreak` with per-row generators.

    Rows with a unique maximum take the vectorized argmax and consume
    no randomness — exactly like the scalar helper.  Only tied rows
    fall back to that row's generator, with the same ``choice`` call.
    """
    row_max = scores.max(axis=1)
    is_max = scores == row_max[:, None]
    actions = scores.argmax(axis=1).astype(np.intp)
    for i in np.flatnonzero(is_max.sum(axis=1) > 1):
        best = is_max[i].nonzero()[0]
        # one integers draw == rng.choice(best) on the stream (see
        # argmax_random_tiebreak), so tied rows stay bit-identical
        actions[i] = int(best[rngs[i].integers(0, best.size)])
    return actions


def _uniform(values, what: str):
    """Assert all agents share a hyperparameter; return the shared value."""
    first = values[0]
    if any(v != first for v in values[1:]):
        raise ConfigError(f"cannot stack policies with differing {what}: {sorted(set(values))}")
    return first


class StackedPolicies(abc.ABC):
    """Base class: ``n`` same-kind policies as one stacked state.

    Subclasses stack in ``__init__``, mutate only their stacked arrays
    during the run, and copy state back into the policy objects in
    :meth:`writeback`.  The policy objects' generators are used in
    place throughout, so their streams are already advanced correctly
    when writeback happens.
    """

    #: True when the stacked select/update consume integer codes
    #: (one-hot specialists) rather than dense context rows.
    wants_codes: bool = False

    #: rows per blocked-kernel chunk for the dense scoring contractions
    #: (see :mod:`repro.bandits.kernels`); ``None`` auto-sizes to cache
    #: from the stacked state's row footprint.  Set by
    #: :func:`stack_policies` from the engine's ``kernel_block_size``
    #: knob — blocked and unblocked evaluation are bitwise identical,
    #: so any value preserves the exactness contract.
    kernel_block_size: int | None = None

    def __init__(self, policies: Sequence[BanditPolicy]) -> None:
        policies = list(policies)
        if not policies:
            raise ConfigError("cannot stack an empty policy list")
        kinds = {type(p) for p in policies}
        if len(kinds) != 1:
            raise ConfigError(
                f"cannot stack mixed policy types: {sorted(c.__name__ for c in kinds)}"
            )
        self.policies = policies
        self.n_agents = len(policies)
        self.n_arms = _uniform([p.n_arms for p in policies], "n_arms")
        self.n_features = _uniform([p.n_features for p in policies], "n_features")
        self.rngs = [p._rng for p in policies]
        self.t = np.array([p.t for p in policies], dtype=np.int64)

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def select(self, contexts: np.ndarray) -> np.ndarray:
        """One action per agent for that agent's context row."""

    @abc.abstractmethod
    def update(self, contexts: np.ndarray, actions: np.ndarray, rewards: np.ndarray) -> None:
        """One update per agent (row ``i`` updates agent ``i``'s state)."""

    @abc.abstractmethod
    def writeback(self) -> None:
        """Copy stacked state back into the underlying policy objects."""

    def _writeback_t(self) -> None:
        for i, p in enumerate(self.policies):
            p.t = int(self.t[i])

    def state_nbytes(self) -> int:
        """Bytes of stacked policy-state arrays currently held.

        Counts every ndarray attribute of the stacked instance (count
        and sum tables, design inverses, Cholesky factors, the ``t``
        vector, ...) — the engine-side policy state whose footprint the
        memory bench compares across exactness tiers.  Scalar policy
        objects and generators are not included.
        """
        return sum(
            v.nbytes for v in self.__dict__.values() if isinstance(v, np.ndarray)
        )


class _StackedDenseLinear(StackedPolicies):
    """Shared stacking for the dense ridge family (LinUCB, eps-greedy)."""

    def __init__(self, policies: Sequence[BanditPolicy]) -> None:
        super().__init__(policies)
        self.ridge = _uniform([p.ridge for p in policies], "ridge")
        self.A_inv = np.stack([p.A_inv for p in policies])  # (n, k, d, d)
        self.b = np.stack([p.b for p in policies])  # (n, k, d)
        self.theta = np.stack([p.theta for p in policies])  # (n, k, d)

    def _score_block(self) -> int:
        """Rows per blocked scoring chunk: explicit knob or cache-sized."""
        if self.kernel_block_size is not None:
            return self.kernel_block_size
        return auto_block_size(self.A_inv[0].nbytes)

    def _dense_update(
        self, contexts: np.ndarray, actions: np.ndarray, rewards: np.ndarray
    ) -> None:
        idx = np.arange(self.n_agents)
        A_sel = self.A_inv[idx, actions]  # gather copies (n, d, d)
        sherman_morrison(A_sel, contexts)
        b_sel = self.b[idx, actions]
        b_sel += rewards[:, None] * contexts
        self.A_inv[idx, actions] = A_sel
        self.b[idx, actions] = b_sel
        self.theta[idx, actions] = theta_refresh(
            A_sel, b_sel, block_size=self.kernel_block_size
        )
        self.t += 1

    def _writeback_dense(self) -> None:
        # three bulk copies + per-agent views instead of 3n row copies:
        # each policy gets a disjoint row of one snapshot array (agents
        # never alias each other's rows, and the snapshot is decoupled
        # from the live stacked state, so a persistent fleet stepping on
        # after writeback cannot mutate what the policies now hold)
        A_out, b_out, theta_out = self.A_inv.copy(), self.b.copy(), self.theta.copy()
        for i, p in enumerate(self.policies):
            p.A_inv = A_out[i]
            p.b = b_out[i]
            p.theta = theta_out[i]
        self._writeback_t()


class StackedLinUCB(_StackedDenseLinear):
    """``n`` independent :class:`~repro.bandits.linucb.LinUCB` agents."""

    def __init__(self, policies: Sequence[LinUCB]) -> None:
        super().__init__(policies)
        self.alpha = _uniform([p.alpha for p in policies], "alpha")
        self.arm_counts = np.stack([p.arm_counts for p in policies])

    def scores(self, contexts: np.ndarray) -> np.ndarray:
        block = self._score_block()
        means = linear_scores(self.theta, contexts, block_size=block)
        explore = ucb_explore(contexts, self.A_inv, block_size=block)
        return means + self.alpha * np.sqrt(explore)

    def select(self, contexts: np.ndarray) -> np.ndarray:
        return _tiebreak_rows(self.scores(contexts), self.rngs)

    def update(self, contexts, actions, rewards) -> None:
        self._dense_update(contexts, actions, rewards)
        self.arm_counts[np.arange(self.n_agents), actions] += 1

    def writeback(self) -> None:
        counts_out = self.arm_counts.copy()
        for i, p in enumerate(self.policies):
            p.arm_counts = counts_out[i]
        self._writeback_dense()


class StackedLinUCBFast(StackedLinUCB):
    """``fast``-tier LinUCB: float32 dense posteriors + incremental UCB.

    The bit stacker's scoring cost is the ``(n, A, d, d)`` quadratic
    contraction ``x^T A_a^{-1} x`` — the compute-bound ceiling of dense
    cold shards (``BENCH_replay.json``).  This variant attacks it twice:

    * **precision** — ``A_inv``/``b``/``theta`` are float32 (half the
      state bytes *and* twice the SIMD width), and scoring runs through
      :func:`~repro.bandits.kernels.ucb_explore_fast`, a batched-BLAS
      contraction over the ``x x^T`` outer product.  Both trade the bit
      contract for speed — trajectories are *statistically* equivalent,
      gated by the curve bands in ``tests/sim/test_exactness.py``.
    * **incrementality** — a round only changes the pulled arm's
      posterior (rank-1 Sherman–Morrison), so when consecutive rounds
      score the *same* contexts (stationary synthetic shards; replay
      shards re-enter the full path automatically), the cached per-arm
      means and quadratics stay valid for every unpulled arm.  The
      pulled arm's quadratic collapses to the scalar
      :func:`~repro.bandits.kernels.sm_quad_downdate` identity and its
      mean to one ``(n, d)`` dot — ``O(n A d^2)`` scoring becomes
      ``O(n (A + d))`` per fixed-context round.

    :meth:`writeback` (inherited) leaves float32 arrays on the scalar
    policies — every LinUCB operation accepts them, mirroring
    :class:`StackedCodeLinUCBFast`'s convention; ``set_state``
    round-trips restore float64.
    """

    def __init__(self, policies: Sequence[LinUCB]) -> None:
        super().__init__(policies)
        self.A_inv = self.A_inv.astype(np.float32)
        self.b = self.b.astype(np.float32)
        self.theta = self.theta.astype(np.float32)
        # incremental scoring cache: valid only while `_ctx_cache`
        # matches the contexts being scored (value comparison — the
        # engine may refill one context buffer in place)
        self._ctx_cache: np.ndarray | None = None
        self._means: np.ndarray | None = None
        self._quads: np.ndarray | None = None

    def _cache_valid(self, contexts: np.ndarray) -> bool:
        return self._ctx_cache is not None and np.array_equal(
            self._ctx_cache, contexts
        )

    def scores(self, contexts: np.ndarray) -> np.ndarray:
        if not self._cache_valid(contexts):
            ctx32 = np.asarray(contexts, dtype=np.float32)
            block = self._score_block()
            self._means = linear_scores(self.theta, ctx32, block_size=block)
            self._quads = ucb_explore_fast(ctx32, self.A_inv, block_size=block)
            self._ctx_cache = np.array(contexts, copy=True)
        return self._means + np.float32(self.alpha) * np.sqrt(self._quads)

    def update(self, contexts, actions, rewards) -> None:
        # cast once so Sherman–Morrison and the theta refresh run in
        # float32 end-to-end instead of promoting through float64
        ctx32 = np.asarray(contexts, dtype=np.float32)
        cache_hit = self._cache_valid(contexts)
        super().update(ctx32, actions, np.asarray(rewards, dtype=np.float32))
        if cache_hit:
            # the update absorbed the exact contexts the cache was
            # scored with: every unpulled arm's mean/quad is untouched,
            # the pulled arm's follow from the rank-1 identity + the
            # already-refreshed theta row
            idx = np.arange(self.n_agents)
            self._quads[idx, actions] = sm_quad_downdate(self._quads[idx, actions])
            self._means[idx, actions] = vec_dot(self.theta[idx, actions], ctx32)
        else:
            # updated with contexts the cache was not scored against
            # (drifted mid-round) — drop it; next scores() recomputes
            self._ctx_cache = None


class StackedEpsilonGreedy(_StackedDenseLinear):
    """``n`` independent :class:`~repro.bandits.epsilon_greedy.EpsilonGreedy` agents."""

    def __init__(self, policies: Sequence[EpsilonGreedy]) -> None:
        super().__init__(policies)
        self.decay = _uniform([p.decay for p in policies], "decay")
        # epsilon is *state* (it decays), so it stays per-agent
        self.epsilon = np.array([p.epsilon for p in policies], dtype=np.float64)

    def select(self, contexts: np.ndarray) -> np.ndarray:
        scores = linear_scores(self.theta, contexts)
        actions = np.empty(self.n_agents, dtype=np.intp)
        for i in range(self.n_agents):
            rng = self.rngs[i]
            if rng.random() < self.epsilon[i]:
                actions[i] = int(rng.integers(self.n_arms))
            else:
                actions[i] = argmax_random_tiebreak(scores[i], rng)
        return actions

    def update(self, contexts, actions, rewards) -> None:
        self._dense_update(contexts, actions, rewards)
        self.epsilon *= self.decay

    def writeback(self) -> None:
        for i, p in enumerate(self.policies):
            p.epsilon = float(self.epsilon[i])
        self._writeback_dense()


class StackedThompson(_StackedDenseLinear):
    """``n`` independent :class:`~repro.bandits.thompson.LinearThompsonSampling` agents.

    All O(d²) work — Cholesky refresh, posterior-mean shifts, scoring,
    Sherman–Morrison — runs stacked; only the posterior draws stay in a
    thin per-agent loop, because each draw must come from that agent's
    own generator.  One ``standard_normal((A, d))`` fill per agent
    consumes the stream in exactly the arm-major order the scalar
    policy's per-arm loop does (the stream order
    :class:`~repro.bandits.thompson.LinearThompsonSampling` defines), so
    Thompson joins the bit-identity contract instead of breaking it.
    """

    def __init__(self, policies: Sequence[LinearThompsonSampling]) -> None:
        super().__init__(policies)
        self.v = _uniform([p.v for p in policies], "v")
        self.chol = np.stack([p._chol for p in policies])  # (n, A, d, d)
        self.chol_fresh = np.stack([p._chol_fresh for p in policies])  # (n, A)

    def _refresh_chol(self) -> None:
        """Batched equivalent of the scalar lazy per-arm refresh.

        The scalar policy refreshes every stale arm (consuming no RNG)
        at the top of each selection; here all stale ``(agent, arm)``
        pairs refresh in one gufunc call — numpy's batched ``cholesky``
        runs the same LAPACK factorization per matrix, so the factors
        are bitwise those of the scalar path.
        """
        stale = ~self.chol_fresh
        if not stale.any():
            return
        rows, arms = np.nonzero(stale)
        try:
            self.chol[rows, arms] = np.linalg.cholesky(self.A_inv[rows, arms])
        except np.linalg.LinAlgError:
            # mirror the scalar fallback per matrix: jitter only the
            # matrices that actually fail
            jitter = 1e-10 * np.eye(self.n_features)
            for i, a in zip(rows, arms):
                try:
                    self.chol[i, a] = np.linalg.cholesky(self.A_inv[i, a])
                except np.linalg.LinAlgError:
                    self.chol[i, a] = np.linalg.cholesky(self.A_inv[i, a] + jitter)
        self.chol_fresh[rows, arms] = True

    def sample_scores(self, contexts: np.ndarray) -> np.ndarray:
        self._refresh_chol()
        Z = np.empty((self.n_agents, self.n_arms, self.n_features))
        for i, rng in enumerate(self.rngs):
            Z[i] = rng.standard_normal((self.n_arms, self.n_features))
        theta_tilde = self.theta + self.v * mat_vec(self.chol, Z)
        return vec_dot(theta_tilde, contexts[:, None, :])

    def select(self, contexts: np.ndarray) -> np.ndarray:
        return _tiebreak_rows(self.sample_scores(contexts), self.rngs)

    def update(self, contexts, actions, rewards) -> None:
        self._dense_update(contexts, actions, rewards)
        self.chol_fresh[np.arange(self.n_agents), actions] = False

    def writeback(self) -> None:
        chol_out, fresh_out = self.chol.copy(), self.chol_fresh.copy()
        for i, p in enumerate(self.policies):
            p._chol = chol_out[i]
            p._chol_fresh = fresh_out[i]
        self._writeback_dense()


class StackedThompsonFast(StackedThompson):
    """``fast``-tier Thompson: one batched posterior-draw fill per shard.

    The bit stacker's only per-agent Python is the posterior-draw loop —
    ``n`` ``standard_normal((A, d))`` calls per round, because each draw
    must come from that agent's own generator to preserve the scalar
    stream order.  Here the whole shard fills from **one** generator and
    **one** ``standard_normal((n, A, d))`` call per round; the fill is
    laid out agent-major, each agent's block in the same arm-major order
    the scalar policy defines, so per-agent draws are simply regrouped
    into one stream rather than reordered within an agent.  The draws
    are iid normals either way — trajectories are *statistically*
    equivalent, not bitwise (the tier's contract), and the agents' own
    generators (still used for tie-breaks) advance differently from the
    bit tier.

    The shard generator is spawned from agent 0's stream at stacking
    time, so a fast-tier run remains fully seeded and reproducible.
    """

    def __init__(self, policies: Sequence[LinearThompsonSampling]) -> None:
        super().__init__(policies)
        self._draw_rng = self.rngs[0].spawn(1)[0]

    def sample_scores(self, contexts: np.ndarray) -> np.ndarray:
        self._refresh_chol()
        Z = self._draw_rng.standard_normal(
            (self.n_agents, self.n_arms, self.n_features)
        )
        theta_tilde = self.theta + self.v * mat_vec(self.chol, Z)
        return vec_dot(theta_tilde, contexts[:, None, :])


class StackedCodeLinUCB(StackedPolicies):
    """``n`` independent :class:`~repro.bandits.code_linucb.CodeLinUCB` agents.

    Operates on integer codes directly (``wants_codes``): the one-hot
    detour the scalar interface takes is a pure re-derivation of the
    code, so skipping it changes nothing observable.
    """

    wants_codes = True

    def __init__(self, policies: Sequence[CodeLinUCB]) -> None:
        super().__init__(policies)
        self.alpha = _uniform([p.alpha for p in policies], "alpha")
        self.ridge = _uniform([p.ridge for p in policies], "ridge")
        self.counts = np.stack([p.counts for p in policies])  # (n, A, k)
        self.sums = np.stack([p.sums for p in policies])  # (n, A, k)

    def scores_for_codes(self, codes: np.ndarray) -> np.ndarray:
        idx = np.arange(self.n_agents)
        counts_g = self.counts[idx, :, codes]  # (n, A)
        sums_g = self.sums[idx, :, codes]
        denom = self.ridge + counts_g
        means = sums_g / denom
        return means + self.alpha * np.sqrt(1.0 / denom)

    def select(self, codes: np.ndarray) -> np.ndarray:
        return _tiebreak_rows(self.scores_for_codes(codes), self.rngs)

    def update(self, codes, actions, rewards) -> None:
        idx = np.arange(self.n_agents)
        self.counts[idx, actions, codes] += 1.0
        self.sums[idx, actions, codes] += rewards
        self.t += 1

    def writeback(self) -> None:
        counts_out, sums_out = self.counts.copy(), self.sums.copy()
        for i, p in enumerate(self.policies):
            p.counts = counts_out[i]
            p.sums = sums_out[i]
        self._writeback_t()


class StackedCodeLinUCBFast(StackedPolicies):
    """Memory-lean ``fast``-tier stacking of :class:`CodeLinUCB` agents.

    The bit stacker holds two dense ``(n, A, k)`` float64 tables — the
    repo's scaling ceiling (a warm-private A=40/k=64 agent carries
    ~41 KB of table, so a million agents need ~41 GB).  This variant
    attacks both axes the tables waste:

    * **sparsity** — one interaction touches exactly one ``(arm, code)``
      cell, so after ``T`` rounds an agent has touched at most ``T`` of
      its ``A x k`` cells (about 4% on the §5.2 workload).  Touched
      cells live in one shard-wide sorted COO structure — int64 flat
      keys ``(agent * k + code) * A + arm`` with parallel value
      arrays — selection gathers each agent's ``(arm, code)`` column
      run by ``searchsorted``, updates insert at most one new cell per
      agent per round;
    * **precision** — counts and reward sums are float32.  Counts are
      integers well inside float32's exact range and rewards lie in
      ``[0, 1]``, so the only deviation from the bit tier is rounding
      in the accumulated sums and in the UCB arithmetic — which can
      flip near-exact ties and therefore consume tie-break randomness
      differently.  Trajectories are *statistically* equivalent, not
      bit-identical; ``tests/sim/test_exactness.py`` gates the tier
      with curve tolerance bands.

    When occupancy crosses :attr:`densify_occupancy` (warm-started
    populations can arrive dense), the COO state densifies into
    ``(n, A, k)`` float32 tables — still half the bit tier — and stays
    dense; sparse and densified runs are bit-identical *to each other*
    (both compute the same float32 values).  :meth:`writeback` leaves
    float32 tables on the scalar policies (every ``CodeLinUCB``
    operation accepts them; ``set_state`` round-trips restore float64).
    """

    wants_codes = True

    #: occupancy (touched cells / total cells) above which the COO
    #: state densifies to float32 tables; class attribute so tests can
    #: pin either representation.
    densify_occupancy = 0.25

    def __init__(self, policies: Sequence[CodeLinUCB]) -> None:
        super().__init__(policies)
        self.alpha = _uniform([p.alpha for p in policies], "alpha")
        self.ridge = _uniform([p.ridge for p in policies], "ridge")
        A, k = self.n_arms, self.n_features
        key_parts, cnt_parts, sum_parts = [], [], []
        for i, p in enumerate(policies):
            a_idx, y_idx = np.nonzero((p.counts != 0.0) | (p.sums != 0.0))
            if a_idx.size == 0:
                continue
            key_parts.append(
                (np.int64(i) * k + y_idx.astype(np.int64)) * A + a_idx.astype(np.int64)
            )
            cnt_parts.append(p.counts[a_idx, y_idx].astype(np.float32))
            sum_parts.append(p.sums[a_idx, y_idx].astype(np.float32))
        if key_parts:
            keys = np.concatenate(key_parts)
            order = np.argsort(keys)
            self._keys = keys[order]
            self._counts = np.concatenate(cnt_parts)[order]
            self._sums = np.concatenate(sum_parts)[order]
        else:
            self._keys = np.empty(0, dtype=np.int64)
            self._counts = np.empty(0, dtype=np.float32)
            self._sums = np.empty(0, dtype=np.float32)
        self._dense_counts: np.ndarray | None = None
        self._dense_sums: np.ndarray | None = None
        self._maybe_densify()

    # ------------------------------------------------------------------ #
    def _gather(self, codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-agent ``(A,)`` count/sum columns at that agent's code.

        Each agent's touched cells for one code are a contiguous key
        run ``[(i*k + y)*A, (i*k + y)*A + A)``; two ``searchsorted``
        calls find every run, and the touched cells scatter into zeroed
        ``(n, A)`` outputs — untouched cells are exactly the zeros the
        dense tables would hold.
        """
        A = self.n_arms
        base = (
            np.arange(self.n_agents, dtype=np.int64) * self.n_features
            + np.asarray(codes, dtype=np.int64)
        ) * A
        lo = np.searchsorted(self._keys, base)
        hi = np.searchsorted(self._keys, base + A)
        lens = hi - lo
        counts_g = np.zeros((self.n_agents, A), dtype=np.float32)
        sums_g = np.zeros((self.n_agents, A), dtype=np.float32)
        total = int(lens.sum())
        if total:
            rows = np.repeat(np.arange(self.n_agents), lens)
            pos = np.repeat(lo, lens) + (
                np.arange(total) - np.repeat(np.cumsum(lens) - lens, lens)
            )
            arms = (self._keys[pos] % A).astype(np.intp)
            counts_g[rows, arms] = self._counts[pos]
            sums_g[rows, arms] = self._sums[pos]
        return counts_g, sums_g

    def scores_for_codes(self, codes: np.ndarray) -> np.ndarray:
        # same expression as the bit stacker, computed in float32
        if self._dense_counts is not None:
            idx = np.arange(self.n_agents)
            counts_g = self._dense_counts[idx, :, codes]
            sums_g = self._dense_sums[idx, :, codes]
        else:
            counts_g, sums_g = self._gather(codes)
        denom = np.float32(self.ridge) + counts_g
        means = sums_g / denom
        return means + np.float32(self.alpha) * np.sqrt(np.float32(1.0) / denom)

    def select(self, codes: np.ndarray) -> np.ndarray:
        return _tiebreak_rows(self.scores_for_codes(codes), self.rngs)

    def update(self, codes, actions, rewards) -> None:
        idx = np.arange(self.n_agents)
        if self._dense_counts is not None:
            self._dense_counts[idx, actions, codes] += np.float32(1.0)
            self._dense_sums[idx, actions, codes] += rewards.astype(np.float32)
            self.t += 1
            return
        A = self.n_arms
        keys = (
            idx.astype(np.int64) * self.n_features + np.asarray(codes, dtype=np.int64)
        ) * A + np.asarray(actions, dtype=np.int64)
        pos = np.searchsorted(self._keys, keys)
        in_range = pos < self._keys.size
        exists = np.zeros(keys.size, dtype=bool)
        exists[in_range] = self._keys[pos[in_range]] == keys[in_range]
        if exists.any():
            hit = pos[exists]
            self._counts[hit] += np.float32(1.0)
            self._sums[hit] += rewards[exists].astype(np.float32)
        if not exists.all():
            miss = ~exists
            # one key per agent, agent-major => already ascending
            new_keys = keys[miss]
            ins = np.searchsorted(self._keys, new_keys)
            self._keys = np.insert(self._keys, ins, new_keys)
            self._counts = np.insert(
                self._counts, ins, np.ones(new_keys.size, dtype=np.float32)
            )
            self._sums = np.insert(self._sums, ins, rewards[miss].astype(np.float32))
            self._maybe_densify()
        self.t += 1

    def _maybe_densify(self) -> None:
        n_cells = self.n_agents * self.n_arms * self.n_features
        if self._keys.size < self.densify_occupancy * n_cells:
            return
        A, k = self.n_arms, self.n_features
        i = self._keys // (A * k)
        rem = self._keys - i * (A * k)
        y = rem // A
        a = rem - y * A
        counts = np.zeros((self.n_agents, A, k), dtype=np.float32)
        sums = np.zeros_like(counts)
        counts[i, a, y] = self._counts
        sums[i, a, y] = self._sums
        self._dense_counts, self._dense_sums = counts, sums
        self._keys = np.empty(0, dtype=np.int64)
        self._counts = np.empty(0, dtype=np.float32)
        self._sums = np.empty(0, dtype=np.float32)

    def writeback(self) -> None:
        A, k = self.n_arms, self.n_features
        if self._dense_counts is not None:
            for i, p in enumerate(self.policies):
                p.counts = self._dense_counts[i].copy()
                p.sums = self._dense_sums[i].copy()
        else:
            span = A * k
            bounds = np.searchsorted(
                self._keys, np.arange(self.n_agents + 1, dtype=np.int64) * span
            )
            rem = self._keys - (self._keys // span) * span
            y_all = rem // A
            a_all = rem - y_all * A
            for i, p in enumerate(self.policies):
                lo, hi = bounds[i], bounds[i + 1]
                counts = np.zeros((A, k), dtype=np.float32)
                sums = np.zeros((A, k), dtype=np.float32)
                counts[a_all[lo:hi], y_all[lo:hi]] = self._counts[lo:hi]
                sums[a_all[lo:hi], y_all[lo:hi]] = self._sums[lo:hi]
                p.counts = counts
                p.sums = sums
        self._writeback_t()


class StackedUCB1(StackedPolicies):
    """``n`` independent :class:`~repro.bandits.ucb1.UCB1` agents (context-free)."""

    def __init__(self, policies: Sequence[UCB1]) -> None:
        super().__init__(policies)
        self.c = _uniform([p.c for p in policies], "c")
        self.counts = np.stack([p.counts for p in policies])  # (n, A) int64
        self.sums = np.stack([p.sums for p in policies])  # (n, A)

    def scores(self) -> np.ndarray:
        scores = np.full((self.n_agents, self.n_arms), np.inf)
        played = self.counts > 0
        if played.any():
            means = np.zeros_like(self.sums)
            np.divide(self.sums, self.counts, out=means, where=played)
            total = np.maximum(self.t, 1).astype(np.float64)
            log_over_n = np.zeros_like(self.sums)
            np.divide(np.log(total)[:, None], self.counts, out=log_over_n, where=played)
            bonus = self.c * np.sqrt(log_over_n)
            scores[played] = means[played] + bonus[played]
        return scores

    def select(self, contexts: np.ndarray | None = None) -> np.ndarray:
        return _tiebreak_rows(self.scores(), self.rngs)

    def update(self, contexts, actions, rewards) -> None:
        idx = np.arange(self.n_agents)
        self.counts[idx, actions] += 1
        self.sums[idx, actions] += rewards
        self.t += 1

    def writeback(self) -> None:
        counts_out, sums_out = self.counts.copy(), self.sums.copy()
        for i, p in enumerate(self.policies):
            p.counts = counts_out[i]
            p.sums = sums_out[i]
        self._writeback_t()


_STACKERS: dict[str, type[StackedPolicies]] = {
    LinUCB.kind: StackedLinUCB,
    EpsilonGreedy.kind: StackedEpsilonGreedy,
    LinearThompsonSampling.kind: StackedThompson,
    CodeLinUCB.kind: StackedCodeLinUCB,
    UCB1.kind: StackedUCB1,
}

#: kinds with a dedicated ``fast``-tier stacker; every other kind runs
#: its bit stacker under ``exactness="fast"`` (degenerates to ``bit``).
_FAST_STACKERS: dict[str, type[StackedPolicies]] = {
    CodeLinUCB.kind: StackedCodeLinUCBFast,
    LinUCB.kind: StackedLinUCBFast,
    LinearThompsonSampling.kind: StackedThompsonFast,
}


def policies_stackable(policies: Sequence[BanditPolicy]) -> bool:
    """Whether :func:`stack_policies` would accept this population.

    Stackability is exactly "every policy shares one non-``None``
    :meth:`~repro.bandits.base.BanditPolicy.fleet_key`": same kind, same
    shapes, same hyperparameters.  Populations that merely *mix* keys
    are not stackable into one state, but the sharded fleet engine
    (:func:`repro.sim.fleet.shard_indices`) still runs them — one
    stacked state per key.
    """
    policies = list(policies)
    if not policies:
        return False
    first = type(policies[0])
    if not all(type(p) is first for p in policies):
        return False
    key = policies[0].fleet_key()
    if key is None or policies[0].kind not in _STACKERS:
        return False
    return all(p.fleet_key() == key for p in policies[1:])


def stack_policies(
    policies: Sequence[BanditPolicy],
    *,
    exactness: str = "bit",
    kernel_block_size: int | None = None,
) -> StackedPolicies:
    """Stack a homogeneous policy population for the fleet engine.

    ``exactness`` selects the contract tier (:data:`EXACTNESS_TIERS`):
    ``"bit"`` always uses the bit-identical stackers; ``"fast"`` uses a
    memory-lean stacker for kinds that have one and silently falls back
    to the bit stacker for the rest.

    ``kernel_block_size`` chunks the dense scoring contractions over
    the agent axis (:attr:`StackedPolicies.kernel_block_size`); ``None``
    auto-sizes to cache.  Blocked evaluation is bitwise identical to
    unblocked, so the knob is pure tuning on either tier.
    """
    if exactness not in EXACTNESS_TIERS:
        raise ConfigError(
            f"unknown exactness tier {exactness!r}; "
            f"expected one of {EXACTNESS_TIERS}"
        )
    if kernel_block_size is not None and (
        not isinstance(kernel_block_size, (int, np.integer))
        or isinstance(kernel_block_size, bool)
        or kernel_block_size < 1
    ):
        raise ConfigError(
            f"kernel_block_size must be a positive int or None, "
            f"got {kernel_block_size!r}"
        )
    policies = list(policies)
    if not policies:
        raise ConfigError("cannot stack an empty policy list")
    kind = policies[0].kind
    if kind not in _STACKERS or not policies[0].supports_fleet:
        raise ConfigError(
            f"policy kind {kind!r} does not support fleet stacking; "
            f"stackable kinds: {sorted(_STACKERS)}"
        )
    cls = (
        _FAST_STACKERS[kind]
        if exactness == "fast" and kind in _FAST_STACKERS
        else _STACKERS[kind]
    )
    stacked = cls(policies)
    stacked.kernel_block_size = (
        None if kernel_block_size is None else int(kernel_block_size)
    )
    return stacked
