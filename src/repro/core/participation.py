"""Randomized data reporting (paper §3.1).

"After some interactions with the user, ``T ≥ 1``, the local agent may
randomly construct a payload containing an encoded instance of
interaction data with probability ``p``."

The participation probability ``p`` is the privacy lever: §4 derives
the differential-privacy ``eps`` *entirely* from ``p`` (Eq. 3).  This
module implements the sampling policy exactly as stated:

* the agent buffers its last ``T`` interactions;
* once ``T`` interactions have accumulated, a Bernoulli(``p``) coin
  decides whether to report;
* on heads, **one** interaction is drawn uniformly from the buffer
  (randomizing *which* interaction further obscures timing);
* the paper's experiments cap each user at one tuple
  (``max_reports=1``); allowing ``r > 1`` composes the guarantee to
  ``r·eps`` (§6), which :class:`~repro.privacy.accounting.PrivacyReport`
  tracks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, TypeVar

import numpy as np

from ..utils.rng import ensure_rng
from ..utils.validation import check_positive_int, check_probability

__all__ = ["RandomizedParticipation"]

T_co = TypeVar("T_co")


@dataclass
class RandomizedParticipation(Generic[T_co]):
    """Bernoulli participation policy over buffered interactions.

    Parameters
    ----------
    p:
        Participation probability per eligible window.
    window:
        Number of interactions ``T`` buffered before each coin flip.
    max_reports:
        Total reports this agent may ever emit (paper experiments: 1).
    seed:
        Seed / generator for the coin and the within-buffer draw.

    Examples
    --------
    >>> part = RandomizedParticipation(p=1.0, window=2, seed=0)
    >>> part.offer("t0") is None
    True
    >>> part.offer("t1") in ("t0", "t1")
    True
    """

    p: float = 0.5
    window: int = 10
    max_reports: int = 1
    seed: int | np.random.Generator | None = None

    _buffer: list = field(default_factory=list, init=False, repr=False)
    _rng: np.random.Generator = field(init=False, repr=False)
    reports_sent: int = field(default=0, init=False)
    windows_seen: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        check_probability(self.p, name="p")
        check_positive_int(self.window, name="window")
        check_positive_int(self.max_reports, name="max_reports", minimum=0)
        self._rng = ensure_rng(self.seed)

    @property
    def exhausted(self) -> bool:
        """True once the report budget is spent."""
        return self.reports_sent >= self.max_reports

    def offer(self, item: T_co) -> T_co | None:
        """Buffer one interaction; maybe emit a report.

        Returns the sampled item when (a) the buffer has reached
        ``window``, (b) the Bernoulli(``p``) coin lands heads, and
        (c) the report budget is not exhausted — otherwise ``None``.
        The buffer resets after every coin flip, so candidate windows
        are disjoint (each interaction gets at most one chance to be
        reported).
        """
        if self.exhausted:
            return None
        self._buffer.append(item)
        if len(self._buffer) < self.window:
            return None
        self.windows_seen += 1
        buffer, self._buffer = self._buffer, []
        if self._rng.random() >= self.p:
            return None
        self.reports_sent += 1
        return buffer[int(self._rng.integers(len(buffer)))]

    def reset(self) -> None:
        """Clear the buffer and budget (a fresh device enrollment)."""
        self._buffer.clear()
        self.reports_sent = 0
        self.windows_seen = 0
