"""Randomized data reporting (paper §3.1).

"After some interactions with the user, ``T ≥ 1``, the local agent may
randomly construct a payload containing an encoded instance of
interaction data with probability ``p``."

The participation probability ``p`` is the privacy lever: §4 derives
the differential-privacy ``eps`` *entirely* from ``p`` (Eq. 3).  This
module implements the sampling policy exactly as stated:

* the agent buffers its last ``T`` interactions;
* once ``T`` interactions have accumulated, a Bernoulli(``p``) coin
  decides whether to report;
* on heads, **one** interaction is drawn uniformly from the buffer
  (randomizing *which* interaction further obscures timing);
* the paper's experiments cap each user at one tuple
  (``max_reports=1``); allowing ``r > 1`` composes the guarantee to
  ``r·eps`` (§6), which :class:`~repro.privacy.accounting.PrivacyReport`
  tracks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, Sequence, TypeVar

import numpy as np

from ..utils.rng import ensure_rng
from ..utils.validation import check_positive_int, check_probability

__all__ = ["RandomizedParticipation", "StackedParticipation"]

T_co = TypeVar("T_co")


@dataclass
class RandomizedParticipation(Generic[T_co]):
    """Bernoulli participation policy over buffered interactions.

    Parameters
    ----------
    p:
        Participation probability per eligible window.
    window:
        Number of interactions ``T`` buffered before each coin flip.
    max_reports:
        Total reports this agent may ever emit (paper experiments: 1).
    seed:
        Seed / generator for the coin and the within-buffer draw.

    Examples
    --------
    >>> part = RandomizedParticipation(p=1.0, window=2, seed=0)
    >>> part.offer("t0") is None
    True
    >>> part.offer("t1") in ("t0", "t1")
    True
    """

    p: float = 0.5
    window: int = 10
    max_reports: int = 1
    seed: int | np.random.Generator | None = None

    _buffer: list = field(default_factory=list, init=False, repr=False)
    _rng: np.random.Generator = field(init=False, repr=False)
    reports_sent: int = field(default=0, init=False)
    windows_seen: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        check_probability(self.p, name="p")
        check_positive_int(self.window, name="window")
        check_positive_int(self.max_reports, name="max_reports", minimum=0)
        self._rng = ensure_rng(self.seed)

    @property
    def exhausted(self) -> bool:
        """True once the report budget is spent."""
        return self.reports_sent >= self.max_reports

    def offer(self, item: T_co) -> T_co | None:
        """Buffer one interaction; maybe emit a report.

        Returns the sampled item when (a) the buffer has reached
        ``window``, (b) the Bernoulli(``p``) coin lands heads, and
        (c) the report budget is not exhausted — otherwise ``None``.
        The buffer resets after every coin flip, so candidate windows
        are disjoint (each interaction gets at most one chance to be
        reported).
        """
        if self.exhausted:
            return None
        self._buffer.append(item)
        if len(self._buffer) < self.window:
            return None
        self.windows_seen += 1
        buffer, self._buffer = self._buffer, []
        if self._rng.random() >= self.p:
            return None
        self.reports_sent += 1
        return buffer[int(self._rng.integers(len(buffer)))]

    def reset(self) -> None:
        """Clear the buffer and budget (a fresh device enrollment)."""
        self._buffer.clear()
        self.reports_sent = 0
        self.windows_seen = 0


class StackedParticipation:
    """``n`` independent :class:`RandomizedParticipation` policies, stepped per round.

    The fleet engine's columnar reporting path: all window/budget
    bookkeeping — buffer fill levels, report budgets, window counters —
    lives in stacked arrays and advances with vectorized masks, while
    the Bernoulli coin and the within-window index are drawn from each
    agent's *own* generator in exactly the order the scalar
    :meth:`RandomizedParticipation.offer` consumes them (the same
    per-agent-stream trick as ``StackedThompson``).  Because streams
    are per-agent and exhausted/mid-window agents consume no
    randomness at all, a stacked run is bit-interchangeable with the
    scalar call sequence.

    Construction *adopts* the scalar policies mid-stream: fill levels
    come from their live buffers, budgets from their counters, and the
    generators are shared by reference — so a population that already
    ran on the object path (a previous deployment round, a partial
    window) continues exactly where the scalar calls left off.
    :meth:`writeback` pushes the advanced counters back into the
    scalar objects; rebuilding their buffered *items* is the caller's
    job (the caller owns the item data; see
    ``repro.sim.fleet._Shard.finish``).

    Per-agent parameters need not be uniform: ``p``, ``window`` and
    ``max_reports`` are all arrays.
    """

    def __init__(self, policies: Sequence[RandomizedParticipation]) -> None:
        policies = list(policies)
        if not policies:
            raise ValueError("StackedParticipation needs at least one policy")
        self.policies = policies
        self.n = len(policies)
        self.p = np.array([pol.p for pol in policies], dtype=np.float64)
        self.window = np.array([pol.window for pol in policies], dtype=np.intp)
        self.max_reports = np.array([pol.max_reports for pol in policies], dtype=np.intp)
        self.rngs = [pol._rng for pol in policies]
        self.fill = np.array([len(pol._buffer) for pol in policies], dtype=np.intp)
        self.reports_sent = np.array([pol.reports_sent for pol in policies], dtype=np.intp)
        self.windows_seen = np.array([pol.windows_seen for pol in policies], dtype=np.intp)
        #: items buffered *since adoption* that are still pending
        #: (resets at every window boundary; frozen once exhausted)
        self.new_buffered = np.zeros(self.n, dtype=np.intp)
        #: whether any window boundary fired since adoption — when
        #: False, the scalar policy's pre-adoption buffer items are
        #: still live
        self.flipped = np.zeros(self.n, dtype=bool)

    def step(self) -> tuple[np.ndarray, np.ndarray]:
        """Advance every agent's window by one buffered interaction.

        Equivalent to one ``offer`` call per agent: budget-exhausted
        agents are skipped (no buffering, no RNG — the scalar early
        return), everyone else buffers, and agents whose buffer just
        reached ``window`` flip their coin.

        Returns
        -------
        (reported, within)
            ``reported`` is a boolean mask of agents that emitted a
            report this step; ``within[j]`` (valid where ``reported``)
            is the sampled index into agent ``j``'s conceptual window
            buffer — ``window[j] - 1`` is the current interaction,
            ``0`` the oldest buffered one.
        """
        active = self.reports_sent < self.max_reports
        self.fill[active] += 1
        self.new_buffered[active] += 1
        boundary = active & (self.fill >= self.window)
        reported = np.zeros(self.n, dtype=bool)
        within = np.zeros(self.n, dtype=np.intp)
        if boundary.any():
            self.windows_seen[boundary] += 1
            self.fill[boundary] = 0
            self.new_buffered[boundary] = 0
            self.flipped[boundary] = True
            # the draws stay per-agent — each must come from that
            # agent's own stream, in the scalar offer() order: one
            # uniform for the coin, then (heads only) one integer for
            # the within-window index
            for j in np.nonzero(boundary)[0]:
                rng = self.rngs[j]
                if rng.random() < self.p[j]:
                    self.reports_sent[j] += 1
                    reported[j] = True
                    within[j] = int(rng.integers(self.window[j]))
        return reported, within

    def writeback(self) -> None:
        """Push the advanced budget/window counters into the scalar objects.

        Generators were shared by reference all along, so only the
        integer counters need copying back.  Buffer *contents* are the
        caller's responsibility (:attr:`new_buffered` and
        :attr:`flipped` say which items are live).
        """
        for j, pol in enumerate(self.policies):
            pol.reports_sent = int(self.reports_sent[j])
            pol.windows_seen = int(self.windows_seen[j])
