"""Multi-round P2B deployments (the Figure 1 cycle).

The paper's experiments run one collection round, but its architecture
(Fig. 1) is a *loop*: agents interact, some report, the server
retrains, devices pull the fresh model, repeat.  :class:`DeploymentLoop`
implements that loop with per-round privacy accounting:

* each round enrolls a cohort of fresh users (real deployments grow
  their install base over time);
* continuing users keep their local policy but *may* pull the updated
  central model between rounds (``refresh=True``);
* each user's lifetime report budget stays capped, so the composition
  accounting (``r`` tuples => ``r * eps``, §6) is tracked explicitly by
  :meth:`DeploymentLoop.privacy_report`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.environment import Environment
from ..privacy.accounting import PrivacyReport
from ..utils.exceptions import ConfigError
from ..utils.rng import spawn_seeds
from ..utils.validation import check_positive_int
from .agent import LocalAgent
from .config import AgentMode, P2BConfig
from .system import P2BSystem

__all__ = ["DeploymentLoop", "RoundStats"]


@dataclass(frozen=True)
class RoundStats:
    """Bookkeeping for one deployment round."""

    round_index: int
    n_active_users: int
    n_new_users: int
    n_reports: int
    n_released: int
    mean_reward: float


@dataclass
class DeploymentLoop:
    """Run a warm-private P2B deployment over multiple rounds.

    Parameters
    ----------
    config:
        Deployment configuration.  ``max_reports_per_user`` bounds each
        user's *lifetime* contributions across all rounds.
    env:
        Workload supplying user sessions.
    interactions_per_round:
        Local interactions each active user performs per round.
    refresh:
        Whether continuing users pull the latest central model at the
        start of each round (the Fig. 1 "model update" arrow).  Note
        that pulling a model *overwrites* locally-accumulated learning
        with the (usually better-fed) central state.
    seed:
        Root seed.
    engine:
        ``"auto"`` (default) steps each round through the vectorized
        sharded fleet engine (:mod:`repro.sim`) when the enrolled
        population supports it — bit-identical to the loop by the sim
        contract; mixed cohorts shard by configuration —
        ``"sequential"`` forces the reference loop, ``"fleet"`` insists
        and raises when unsupported.  Fleet rounds record reports
        columnar-side, so each round's collection flows arrays straight
        through the shuffler into the server
        (:meth:`~repro.core.system.P2BSystem.collect`'s fast path) —
        no per-report objects anywhere in the cycle, same round stats.
    n_workers:
        Fleet shard parallelism per round (default 1 = serial); the
        per-round stats are identical either way (the sim contract).
    plan_chunk_size:
        Fleet plan-chunk size per round (default ``None`` = whole
        horizons): session plans materialize in bounded slices, and a
        chunk size at or above ``interactions_per_round`` degenerates
        to the unchunked path.  Collection rounds compose freely with
        chunking — a report buffered mid-chunk is collected with the
        identical payload (the sim contract) — so the per-round stats
        never depend on the chunk size.
    exactness:
        Fleet contract tier per round, one of
        :data:`~repro.sim.EXACTNESS_TIERS` (default ``"bit"`` =
        bit-identical to the sequential loop).  ``"fast"`` runs
        memory-lean policy state; round statistics become
        statistically, not bitwise, equivalent.  Sequential rounds
        ignore the tier.

    ``engine`` also accepts a full
    :class:`~repro.experiments.runner.EngineConfig`, in which case the
    remaining engine knobs must stay at their defaults (pass the
    settings inside the config instead) and the config's ``sink`` must
    be ``None`` — rounds compute their own statistics.
    """

    config: P2BConfig
    env: Environment
    interactions_per_round: int = 10
    refresh: bool = True
    seed: int | None = None
    engine: "str | object" = "auto"
    n_workers: int = 1
    worker_backend: str = "thread"
    plan_chunk_size: int | None = None
    plan_form: str = "auto"
    exactness: str = "bit"
    kernel_block_size: int | None = None

    system: P2BSystem = field(init=False)
    rounds: list[RoundStats] = field(init=False, default_factory=list)
    _users: list[tuple[LocalAgent, object]] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        check_positive_int(self.interactions_per_round, name="interactions_per_round")
        if not isinstance(self.engine, str):
            # a full EngineConfig bundle (duck-typed: core must not
            # import experiments at module scope)
            cfg = self.engine
            if not all(hasattr(cfg, f) for f in ("engine", "n_workers", "exactness")):
                raise ConfigError(
                    "engine must be 'auto', 'sequential', 'fleet' or an "
                    f"EngineConfig, got {cfg!r}"
                )
            explicit = (
                self.n_workers != 1
                or self.worker_backend != "thread"
                or self.plan_chunk_size is not None
                or self.plan_form != "auto"
                or self.exactness != "bit"
                or self.kernel_block_size is not None
            )
            if explicit:
                raise ConfigError(
                    "pass engine settings either as one EngineConfig or as "
                    "individual fields, not both (the config already bundles "
                    "them)"
                )
            if getattr(cfg, "sink", None) is not None:
                raise ConfigError(
                    "EngineConfig.sink is not supported by DeploymentLoop; "
                    "rounds compute their own statistics"
                )
            self.engine = cfg.engine
            self.n_workers = cfg.n_workers
            self.worker_backend = cfg.worker_backend
            self.plan_chunk_size = cfg.plan_chunk_size
            self.plan_form = cfg.plan_form
            self.exactness = cfg.exactness
            self.kernel_block_size = getattr(cfg, "kernel_block_size", None)
        check_positive_int(self.n_workers, name="n_workers")
        if self.plan_chunk_size is not None:
            check_positive_int(self.plan_chunk_size, name="plan_chunk_size")
        if self.kernel_block_size is not None:
            check_positive_int(self.kernel_block_size, name="kernel_block_size")
        if self.engine not in ("auto", "sequential", "fleet"):
            raise ConfigError(
                f"engine must be 'auto', 'sequential' or 'fleet', got {self.engine!r}"
            )
        from ..sim import EXACTNESS_TIERS, PLAN_FORMS, WORKER_BACKENDS

        if self.worker_backend not in WORKER_BACKENDS:
            raise ConfigError(
                f"worker_backend must be one of {WORKER_BACKENDS}, "
                f"got {self.worker_backend!r}"
            )
        if self.plan_form not in PLAN_FORMS:
            raise ConfigError(
                f"plan_form must be one of {PLAN_FORMS}, got {self.plan_form!r}"
            )
        if self.exactness not in EXACTNESS_TIERS:
            raise ConfigError(
                f"exactness must be one of {EXACTNESS_TIERS}, got {self.exactness!r}"
            )
        sys_seed, self._user_seed_root = spawn_seeds(self.seed, 2)
        self.system = P2BSystem(self.config, mode=AgentMode.WARM_PRIVATE, seed=sys_seed)

    # ------------------------------------------------------------------ #
    def enroll(self, n_users: int) -> None:
        """Add ``n_users`` fresh devices (warm-started when possible)."""
        check_positive_int(n_users, name="n_users")
        for session_seed in spawn_seeds(self._user_seed_root, n_users):
            agent = self.system.new_agent()
            if self.system.server is not None and self.system.server.n_tuples_ingested:
                agent.warm_start(self.system.model_snapshot())
            session = self.env.new_user(session_seed)
            self._users.append((agent, session))

    def run_round(self, *, new_users: int = 0) -> RoundStats:
        """One full cycle: enroll, interact, collect, retrain."""
        if new_users:
            self.enroll(new_users)
        if not self._users:
            raise ConfigError("no users enrolled; call enroll() or pass new_users")
        if self.refresh and self.system.server.n_tuples_ingested:
            snapshot = self.system.model_snapshot()
            for agent, _ in self._users:
                agent.warm_start(snapshot)
        rewards = self._interact()
        outcome = self.system.collect(agent for agent, _ in self._users)
        stats = RoundStats(
            round_index=len(self.rounds),
            n_active_users=len(self._users),
            n_new_users=new_users,
            n_reports=outcome.n_reports,
            n_released=outcome.n_released,
            mean_reward=float(rewards.mean()) if rewards.size else 0.0,
        )
        self.rounds.append(stats)
        return stats

    def _interact(self) -> np.ndarray:
        """One round of local interactions; returns the reward matrix.

        Both engines fill the same ``(n_users, interactions_per_round)``
        matrix (sequential user-major, fleet round-major) and the round
        statistic is computed from the matrix, so the engines agree on
        it bit-for-bit whenever the per-cell rewards agree.
        """
        agents = [agent for agent, _ in self._users]
        sessions = [session for _, session in self._users]
        use_fleet = False
        if self.engine != "sequential":
            from ..sim import FleetRunner, fleet_supported

            use_fleet = fleet_supported(agents)
            if self.engine == "fleet" and not use_fleet:
                raise ConfigError(
                    "engine='fleet' requested but the enrolled population is "
                    "not fleet-capable"
                )
        if use_fleet:
            return (
                FleetRunner(
                    agents,
                    sessions,
                    n_workers=self.n_workers,
                    worker_backend=self.worker_backend,
                    plan_chunk_size=self.plan_chunk_size,
                    plan_form=self.plan_form,
                    exactness=self.exactness,
                    kernel_block_size=self.kernel_block_size,
                )
                .run(self.interactions_per_round)
                .rewards
            )
        rewards = np.empty((len(agents), self.interactions_per_round), dtype=np.float64)
        for u, (agent, session) in enumerate(self._users):
            for t in range(self.interactions_per_round):
                x = session.next_context()
                action = agent.act(x)
                reward = session.reward(action)
                agent.learn(x, action, reward)
                rewards[u, t] = reward
        return rewards

    # ------------------------------------------------------------------ #
    def max_reports_by_any_user(self) -> int:
        """Lifetime reports of the heaviest contributor (drives composition)."""
        if not self._users:
            return 0
        return max(
            agent.participation.reports_sent if agent.participation else 0
            for agent, _ in self._users
        )

    def privacy_report(self) -> PrivacyReport:
        """Deployment-lifetime guarantee with realized composition.

        Uses the *realized* maximum reports per user (never exceeding
        the configured budget) so the ``r * eps`` total is evidence, not
        just configuration.
        """
        realized_r = max(self.max_reports_by_any_user(), 1)
        base = self.system.privacy_report()
        return PrivacyReport(
            p=base.p, l=base.l, eps_bar=base.eps_bar, tuples_per_user=realized_r
        )

    @property
    def mean_reward_trajectory(self) -> np.ndarray:
        """Per-round population mean reward (should rise round over round)."""
        return np.array([r.mean_reward for r in self.rounds])
