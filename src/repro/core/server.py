"""The central server (paper §3, Fig. 1).

"Upon receiving the new batch of training data, the server updates the
global model based on the observed interaction data and distributes it
to local agents that request it."

Two server flavours mirror the two warm settings:

* :class:`PrivateServer` consumes :class:`EncodedReport` batches from
  the shuffler and trains its central policy on **one-hot code
  contexts** (``R^k``);
* :class:`NonPrivateServer` consumes :class:`RawReport` batches
  directly from agents and trains on **raw contexts** (``R^d``).

Both distribute the model as a state dict (deep-copied / serialized),
and both training paths are *additive* — order-invariant and idempotent
per tuple — which is required for the private path because the shuffler
destroys ordering.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..bandits.base import BanditPolicy
from ..encoding.base import Encoder
from ..utils.exceptions import ValidationError
from .payload import EncodedReport, RawReport

__all__ = ["PrivateServer", "NonPrivateServer"]


class _ServerBase:
    """Shared bookkeeping for both server flavours."""

    def __init__(self, policy: BanditPolicy) -> None:
        self.policy = policy
        self.n_tuples_ingested = 0
        self.n_batches = 0

    def model_snapshot(self) -> dict[str, Any]:
        """Deep snapshot of the central model, safe to hand to agents."""
        return self.policy.get_state()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(tuples={self.n_tuples_ingested}, "
            f"batches={self.n_batches})"
        )


class PrivateServer(_ServerBase):
    """Central-model trainer for the P2B (private) path.

    Parameters
    ----------
    policy:
        Central policy; its ``n_features`` must equal ``encoder.n_codes``
        for one-hot mode or ``encoder.n_features`` for centroid mode.
    encoder:
        The public codebook — used only to translate codes to contexts;
        the server never sees raw contexts.
    context_mode:
        ``"one-hot"`` or ``"centroid"`` (must match the agents' mode;
        see :class:`~repro.core.config.P2BConfig.private_context`).
    """

    def __init__(
        self, policy: BanditPolicy, encoder: Encoder, *, context_mode: str = "one-hot"
    ) -> None:
        if context_mode not in ("one-hot", "centroid"):
            raise ValidationError(
                f"context_mode must be 'one-hot' or 'centroid', got {context_mode!r}"
            )
        expected = encoder.n_codes if context_mode == "one-hot" else encoder.n_features
        if policy.n_features != expected:
            raise ValidationError(
                f"central policy n_features ({policy.n_features}) must equal "
                f"{expected} for {context_mode} contexts"
            )
        super().__init__(policy)
        self.encoder = encoder
        self.context_mode = context_mode

    def ingest(self, batch: Sequence[EncodedReport]) -> None:
        """Train the central model on a shuffled, thresholded batch.

        Thin object adapter over :meth:`ingest_arrays` — the columnar
        form is the native one, so both entry points drive the central
        policy through byte-identical arrays.
        """
        if not batch:
            self.n_batches += 1
            return
        self.ingest_arrays(
            np.array([r.code for r in batch], dtype=np.intp),
            np.array([r.action for r in batch], dtype=np.intp),
            np.array([r.reward for r in batch], dtype=np.float64),
        )

    def ingest_arrays(
        self, codes: np.ndarray, actions: np.ndarray, rewards: np.ndarray
    ) -> None:
        """Columnar fast path: train directly on report columns.

        The device → shuffler → server pipeline's terminal stage; codes
        become one-hot indicators (or codebook centroids via the
        batched decode) and feed ``update_batch`` — no report objects
        anywhere.
        """
        codes = np.asarray(codes, dtype=np.intp).ravel()
        actions = np.asarray(actions, dtype=np.intp).ravel()
        rewards = np.asarray(rewards, dtype=np.float64).ravel()
        if not (codes.shape[0] == actions.shape[0] == rewards.shape[0]):
            raise ValidationError(
                "codes, actions and rewards must have matching lengths: "
                f"{codes.shape[0]}, {actions.shape[0]}, {rewards.shape[0]}"
            )
        n = codes.shape[0]
        if n == 0:
            self.n_batches += 1
            return
        k = self.encoder.n_codes
        if codes.max(initial=0) >= k:
            raise ValidationError(
                f"batch contains code {int(codes.max())} outside the codebook of size {k}"
            )
        if self.context_mode == "one-hot":
            contexts = np.zeros((n, k), dtype=np.float64)
            contexts[np.arange(n), codes] = 1.0
        else:
            contexts = self.encoder.decode_batch(codes)
        self.policy.update_batch(contexts, actions, rewards)
        self.n_tuples_ingested += n
        self.n_batches += 1


class NonPrivateServer(_ServerBase):
    """Central-model trainer for the warm-non-private baseline."""

    def ingest(self, batch: Sequence[RawReport]) -> None:
        """Train the central model on raw-context reports."""
        if not batch:
            self.n_batches += 1
            return
        self.ingest_arrays(
            np.stack([r.context for r in batch]),
            np.array([r.action for r in batch], dtype=np.intp),
            np.array([r.reward for r in batch], dtype=np.float64),
        )

    def ingest_arrays(
        self, contexts: np.ndarray, actions: np.ndarray, rewards: np.ndarray
    ) -> None:
        """Columnar fast path: train directly on raw-context columns."""
        contexts = np.asarray(contexts, dtype=np.float64)
        actions = np.asarray(actions, dtype=np.intp).ravel()
        rewards = np.asarray(rewards, dtype=np.float64).ravel()
        if contexts.ndim != 2:
            raise ValidationError(
                f"contexts must be a 2-D batch, got ndim={contexts.ndim}"
            )
        if not (contexts.shape[0] == actions.shape[0] == rewards.shape[0]):
            raise ValidationError(
                "contexts, actions and rewards must have matching lengths: "
                f"{contexts.shape[0]}, {actions.shape[0]}, {rewards.shape[0]}"
            )
        if contexts.shape[0] == 0:
            self.n_batches += 1
            return
        if contexts.shape[1] != self.policy.n_features:
            raise ValidationError(
                f"batch context dimension {contexts.shape[1]} does not match "
                f"central policy n_features {self.policy.n_features}"
            )
        self.policy.update_batch(contexts, actions, rewards)
        self.n_tuples_ingested += contexts.shape[0]
        self.n_batches += 1
