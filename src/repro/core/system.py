"""End-to-end P2B system wiring (paper Fig. 1).

:class:`P2BSystem` owns the public codebook, the shuffler, and the
central server, and manufactures correctly-configured
:class:`~repro.core.agent.LocalAgent` instances for any of the three
evaluation modes.  The full data path is::

    agent.learn(...)  ->  outbox (EncodedReport, metadata attached)
      -> system.collect([agents])          # gather outboxes
        -> shuffler.process(batch)         # anonymize, shuffle, threshold
          -> server.ingest(released)       # central LinUCB over codes
    system.model_snapshot() -> agent.warm_start(...)

The non-private baseline follows the same surface but bypasses the
shuffler entirely (``collect`` feeds the server directly) — exactly the
paper's "communicate the observed context to the server in its original
form".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from ..bandits.code_linucb import CodeLinUCB
from ..bandits.linucb import LinUCB
from ..encoding.kmeans_encoder import KMeansEncoder
from ..privacy.accounting import PrivacyReport
from ..utils.exceptions import ConfigError
from ..utils.rng import spawn_seeds
from .agent import LocalAgent
from .config import AgentMode, P2BConfig
from .participation import RandomizedParticipation
from .payload import EncodedReport, RawReport, drain_report_batches
from .server import NonPrivateServer, PrivateServer
from .shuffler import Shuffler, ShufflerStats

__all__ = ["P2BSystem", "CollectionResult"]


@dataclass(frozen=True)
class CollectionResult:
    """Outcome of one collection round."""

    n_reports: int
    n_released: int
    shuffler_stats: ShufflerStats | None  # None on the non-private path


class P2BSystem:
    """Factory + orchestrator for a P2B deployment.

    Parameters
    ----------
    config:
        Deployment parameters (see :class:`~repro.core.config.P2BConfig`).
    mode:
        Which §5 setting this system realizes; determines agent wiring
        and which server flavour exists.
    encoder:
        Optional pre-fitted encoder (the public codebook).  When absent
        and the mode is private, a :class:`KMeansEncoder` is fitted on
        synthetic simplex samples.
    seed:
        Root seed; every agent gets an independent child stream, so
        results are invariant to agent construction order.
    """

    def __init__(
        self,
        config: P2BConfig,
        *,
        mode: str = AgentMode.WARM_PRIVATE,
        encoder: KMeansEncoder | None = None,
        seed=None,
    ) -> None:
        if mode not in AgentMode.ALL:
            raise ConfigError(f"mode must be one of {AgentMode.ALL}, got {mode!r}")
        self.config = config
        self.mode = mode
        (
            self._encoder_seed,
            self._shuffler_seed,
            self._server_seed,
            self._agents_root,
        ) = spawn_seeds(seed, 4)
        self._agent_seq = 0

        self.encoder = encoder
        if mode == AgentMode.WARM_PRIVATE and self.encoder is None:
            self.encoder = KMeansEncoder(
                n_codes=config.n_codes,
                n_features=config.n_features,
                q=config.q,
                seed=self._encoder_seed,
            ).fit()

        self.shuffler: Shuffler | None = None
        self.server: PrivateServer | NonPrivateServer | None = None
        if mode == AgentMode.WARM_PRIVATE:
            self.shuffler = Shuffler(
                config.shuffler_threshold,
                seed=self._shuffler_seed,
                # bind the valid code space when the codebook declares one,
                # so out-of-range codes quarantine at the shuffler door
                n_codes=getattr(self.encoder, "n_codes", None),
            )
            if config.private_context == "one-hot":
                # One-hot contexts keep LinUCB's design matrices diagonal,
                # so the specialized CodeLinUCB (O(1) updates) is exact.
                central: CodeLinUCB | LinUCB = CodeLinUCB(
                    n_arms=config.n_actions,
                    n_features=config.n_codes,
                    alpha=config.alpha,
                    ridge=config.ridge,
                    seed=self._server_seed,
                )
            else:
                central = LinUCB(
                    n_arms=config.n_actions,
                    n_features=config.n_features,
                    alpha=config.alpha,
                    ridge=config.ridge,
                    seed=self._server_seed,
                )
            self.server = PrivateServer(
                central, self.encoder, context_mode=config.private_context  # type: ignore[arg-type]
            )
        elif mode == AgentMode.WARM_NONPRIVATE:
            central = LinUCB(
                n_arms=config.n_actions,
                n_features=config.n_features,
                alpha=config.alpha,
                ridge=config.ridge,
                seed=self._server_seed,
            )
            self.server = NonPrivateServer(central)
        self._collected_codes: list[int] = []
        #: optional chaos plan corrupting collected batches (see
        #: :mod:`repro.sim.faults`); ``REPRO_FAULTS`` arms one globally
        self.fault_plan = None
        self._fault_batches = 0

    # ------------------------------------------------------------------ #
    # agent factory
    # ------------------------------------------------------------------ #
    def _next_agent_seeds(self) -> tuple:
        (seed,) = self._agents_root.spawn(1)
        policy_seed, part_seed = seed.spawn(2)
        return policy_seed, part_seed

    def new_agent(self, agent_id: str | None = None) -> LocalAgent:
        """Create an agent wired for this system's mode (cold-started)."""
        policy_seed, part_seed = self._next_agent_seeds()
        self._agent_seq += 1
        aid = agent_id if agent_id is not None else f"agent-{self._agent_seq}"
        cfg = self.config
        if self.mode == AgentMode.WARM_PRIVATE and cfg.private_context == "one-hot":
            policy: CodeLinUCB | LinUCB = CodeLinUCB(
                n_arms=cfg.n_actions,
                n_features=cfg.n_codes,
                alpha=cfg.alpha,
                ridge=cfg.ridge,
                seed=policy_seed,
            )
        else:
            policy = LinUCB(
                n_arms=cfg.n_actions,
                n_features=cfg.n_features,
                alpha=cfg.alpha,
                ridge=cfg.ridge,
                seed=policy_seed,
            )
        participation = None
        if self.mode != AgentMode.COLD:
            participation = RandomizedParticipation(
                p=cfg.p,
                window=cfg.window,
                max_reports=cfg.max_reports_per_user,
                seed=part_seed,
            )
        return LocalAgent(
            aid,
            policy,
            mode=self.mode,
            encoder=self.encoder if self.mode == AgentMode.WARM_PRIVATE else None,
            participation=participation,
            private_context=cfg.private_context,
        )

    def new_warm_agent(self, agent_id: str | None = None) -> LocalAgent:
        """Create an agent initialized from the current central model."""
        if self.server is None:
            raise ConfigError("cold systems have no central model to warm-start from")
        agent = self.new_agent(agent_id)
        agent.warm_start(self.server.model_snapshot())
        return agent

    # ------------------------------------------------------------------ #
    # collection round
    # ------------------------------------------------------------------ #
    def _maybe_corrupt(self, codes, actions, rewards):
        """Chaos tap on the private collection path.

        When a fault plan with a ``corrupt`` rate is armed (an explicit
        :attr:`fault_plan` or the ``REPRO_FAULTS`` env knob), drained
        report columns are deterministically mangled before the
        shuffler sees them — exercising the quarantine end-to-end.
        With no plan armed (the default) the columns pass through
        untouched.
        """
        # lazy: core must stay importable without the sim package loaded
        from ..sim.faults import active_plan

        plan = self.fault_plan if self.fault_plan is not None else active_plan()
        if plan is None or plan.p_corrupt <= 0.0:
            return codes, actions, rewards
        self._fault_batches += 1
        codes, actions, rewards, _ = plan.corrupt_batch(
            self._fault_batches, codes, actions, rewards
        )
        return codes, actions, rewards

    def collect(self, agents: Iterable[LocalAgent]) -> CollectionResult:
        """Drain agent outboxes and run one collection round.

        Private mode: reports pass through the shuffler; only the
        released (crowd-blended) tuples reach the server.  Non-private
        mode: raw reports go straight to the server.  Cold mode: no-op.

        When every pending report is columnar (the population just ran
        on the fleet engine), the whole round stays columnar: report
        columns flow through :meth:`Shuffler.process_arrays` into
        ``ingest_arrays`` without a single payload object — bit-exactly
        the object path's release stream, stats, audit and server
        update (the shuffler consumes the same permutation draw and the
        batch enters it in the same agent-major order).  Any agent
        holding materialized report objects sends the round down the
        object path instead; both are always available mid-stream.
        """
        agents = list(agents)
        batches = drain_report_batches(agents)
        if batches is None:
            return self._collect_objects(agents)
        encoded_batch, raw_batch = batches
        n_reports = len(encoded_batch) + len(raw_batch)
        if self.mode == AgentMode.COLD or self.server is None:
            return CollectionResult(n_reports=n_reports, n_released=0, shuffler_stats=None)
        if self.mode == AgentMode.WARM_PRIVATE:
            assert self.shuffler is not None
            r_codes, r_actions, r_rewards, stats = self.shuffler.process_arrays(
                *self._maybe_corrupt(
                    encoded_batch.codes, encoded_batch.actions, encoded_batch.rewards
                )
            )
            stats.audit.raise_if_violated()
            self.server.ingest_arrays(r_codes, r_actions, r_rewards)  # type: ignore[union-attr]
            self._collected_codes.extend(int(c) for c in r_codes)
            return CollectionResult(
                n_reports=n_reports,
                n_released=int(r_codes.shape[0]),
                shuffler_stats=stats,
            )
        self.server.ingest_arrays(  # type: ignore[union-attr]
            raw_batch.contexts, raw_batch.actions, raw_batch.rewards
        )
        return CollectionResult(
            n_reports=n_reports, n_released=len(raw_batch), shuffler_stats=None
        )

    def _collect_objects(self, agents: Iterable[LocalAgent]) -> CollectionResult:
        """The object-path collection round (the scalar reference)."""
        reports: list[EncodedReport | RawReport] = []
        for agent in agents:
            reports.extend(agent.drain_outbox())
        if self.mode == AgentMode.COLD or self.server is None:
            return CollectionResult(n_reports=len(reports), n_released=0, shuffler_stats=None)
        if self.mode == AgentMode.WARM_PRIVATE:
            assert self.shuffler is not None
            encoded = [r for r in reports if isinstance(r, EncodedReport)]
            released, stats = self.shuffler.process(encoded)
            stats.audit.raise_if_violated()
            self.server.ingest(released)  # type: ignore[arg-type]
            self._collected_codes.extend(r.code for r in released)
            return CollectionResult(
                n_reports=len(reports), n_released=len(released), shuffler_stats=stats
            )
        raw = [r for r in reports if isinstance(r, RawReport)]
        self.server.ingest(raw)  # type: ignore[arg-type]
        return CollectionResult(n_reports=len(reports), n_released=len(raw), shuffler_stats=None)

    # ------------------------------------------------------------------ #
    # asynchronous collection: per-agent clocks, threshold-fill release
    # ------------------------------------------------------------------ #
    @property
    def n_pending_reports(self) -> int:
        """Reports buffered in the shuffler awaiting their crowd (async)."""
        return 0 if self.shuffler is None else self.shuffler.n_pending

    def collect_async(self, agents: Iterable[LocalAgent]) -> CollectionResult:
        """Drain outboxes into the shuffler's buffer; release what's ready.

        The asynchronous analogue of :meth:`collect` — devices report
        on their own clocks, so ``agents`` may be *any* subset of the
        population, called as often as reports trickle in.  Private
        mode buffers the drained tuples and releases only the codes
        whose crowd (``>= threshold`` across everything pending) has
        filled; sub-threshold tuples keep waiting, surviving even their
        reporter's departure.  Non-private and cold modes have no
        crowd to wait for, so they degenerate to :meth:`collect`.
        Call :meth:`flush_async` at end of deployment to drop the
        stragglers.
        """
        agents = list(agents)
        batches = drain_report_batches(agents)
        if batches is None:
            return self._collect_async_objects(agents)
        encoded_batch, raw_batch = batches
        n_reports = len(encoded_batch) + len(raw_batch)
        if self.mode == AgentMode.COLD or self.server is None:
            return CollectionResult(n_reports=n_reports, n_released=0, shuffler_stats=None)
        if self.mode == AgentMode.WARM_PRIVATE:
            assert self.shuffler is not None
            self.shuffler.buffer_arrays(
                *self._maybe_corrupt(
                    encoded_batch.codes, encoded_batch.actions, encoded_batch.rewards
                )
            )
            return self._release_pending(n_reports, final=False)
        self.server.ingest_arrays(  # type: ignore[union-attr]
            raw_batch.contexts, raw_batch.actions, raw_batch.rewards
        )
        return CollectionResult(
            n_reports=n_reports, n_released=len(raw_batch), shuffler_stats=None
        )

    def _collect_async_objects(self, agents: Iterable[LocalAgent]) -> CollectionResult:
        """Object-path asynchronous collection (mirrors _collect_objects)."""
        reports: list[EncodedReport | RawReport] = []
        for agent in agents:
            reports.extend(agent.drain_outbox())
        if self.mode == AgentMode.COLD or self.server is None:
            return CollectionResult(n_reports=len(reports), n_released=0, shuffler_stats=None)
        if self.mode == AgentMode.WARM_PRIVATE:
            assert self.shuffler is not None
            encoded = [r for r in reports if isinstance(r, EncodedReport)]
            self.shuffler.buffer_reports(encoded)
            return self._release_pending(len(reports), final=False)
        raw = [r for r in reports if isinstance(r, RawReport)]
        self.server.ingest(raw)  # type: ignore[arg-type]
        return CollectionResult(n_reports=len(reports), n_released=len(raw), shuffler_stats=None)

    def _release_pending(self, n_reports: int, *, final: bool) -> CollectionResult:
        r_codes, r_actions, r_rewards, stats = self.shuffler.release_ready(final=final)
        stats.audit.raise_if_violated()
        if r_codes.shape[0]:
            self.server.ingest_arrays(r_codes, r_actions, r_rewards)  # type: ignore[union-attr]
            self._collected_codes.extend(int(c) for c in r_codes)
        return CollectionResult(
            n_reports=n_reports,
            n_released=int(r_codes.shape[0]),
            shuffler_stats=stats,
        )

    def flush_async(self) -> CollectionResult:
        """Final asynchronous release: stragglers' crowds never arrived.

        Releases every pending code that (now) meets the threshold and
        permanently drops the rest — call once at end of deployment.
        No-op for non-private and cold systems.
        """
        if self.mode != AgentMode.WARM_PRIVATE or self.shuffler is None:
            return CollectionResult(n_reports=0, n_released=0, shuffler_stats=None)
        return self._release_pending(0, final=True)

    # ------------------------------------------------------------------ #
    def model_snapshot(self) -> dict[str, Any]:
        """Current central-model state (for distribution to devices)."""
        if self.server is None:
            raise ConfigError("cold systems have no central model")
        return self.server.model_snapshot()

    def privacy_report(self) -> PrivacyReport:
        """Privacy guarantee of this deployment.

        For private systems that have completed collection rounds, the
        realized ``l`` (smallest released crowd across all rounds) is
        used when it is stricter evidence than the configured threshold;
        otherwise the configured threshold stands.
        """
        if self.mode != AgentMode.WARM_PRIVATE:
            raise ConfigError("privacy reports only apply to warm-private systems")
        realized: int | None = None
        if self._collected_codes:
            from ..privacy.crowd_blending import smallest_crowd

            realized = smallest_crowd(self._collected_codes)
        return self.config.privacy_report(realized_l=realized)
