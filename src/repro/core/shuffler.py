"""The trusted shuffler (paper §3.3).

Performs, in order, the three PROCHLO-style operations the paper
specifies:

1. **Anonymization** — every received report is stripped of all
   metadata (the in-process stand-in for discarding IP addresses and
   enclave attestation; see DESIGN.md substitutions).
2. **Shuffling** — batch order is randomized, destroying arrival-order
   correlations.
3. **Thresholding** — tuples whose encoded context appears fewer than
   ``threshold`` times in the batch are dropped.  The threshold *is*
   the crowd-blending ``l`` (§4).

The shuffler returns both the released batch and a
:class:`~repro.privacy.crowd_blending.CrowdBlendingAudit` so callers
can assert the privacy invariant held (the audit on released output
must always pass — a property test pins this).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..privacy.crowd_blending import CrowdBlendingAudit, verify_crowd_blending
from ..utils.rng import ensure_rng
from ..utils.validation import check_positive_int
from .payload import EncodedReport

__all__ = ["Shuffler", "ShufflerStats"]


@dataclass(frozen=True)
class ShufflerStats:
    """Book-keeping for one shuffler batch."""

    n_received: int
    n_released: int
    n_dropped: int
    codes_received: int
    codes_released: int
    audit: CrowdBlendingAudit


class Shuffler:
    """Anonymize → shuffle → threshold (paper §3.3).

    Parameters
    ----------
    threshold:
        Minimum per-code batch frequency for release (the crowd-blending
        ``l``).
    seed:
        Randomness for the shuffle permutation.
    """

    def __init__(self, threshold: int = 10, *, seed=None) -> None:
        self.threshold = check_positive_int(threshold, name="threshold")
        self._rng = ensure_rng(seed)

    def process(
        self, reports: Sequence[EncodedReport]
    ) -> tuple[list[EncodedReport], ShufflerStats]:
        """Run one batch through the three-stage pipeline.

        Returns
        -------
        (released, stats)
            ``released`` is the anonymized, shuffled, thresholded batch;
            ``stats.audit`` is the crowd-blending audit of the release
            (guaranteed satisfied by construction).
        """
        n_received = len(reports)
        # 1. anonymization
        anonymized = [r.anonymized() for r in reports]
        # 2. shuffling
        order = self._rng.permutation(n_received) if n_received else np.array([], dtype=np.intp)
        shuffled = [anonymized[i] for i in order]
        # 3. thresholding
        counts = Counter(r.code for r in shuffled)
        released = [r for r in shuffled if counts[r.code] >= self.threshold]
        audit = verify_crowd_blending([r.code for r in released], self.threshold)
        stats = ShufflerStats(
            n_received=n_received,
            n_released=len(released),
            n_dropped=n_received - len(released),
            codes_received=len(counts),
            codes_released=len({r.code for r in released}),
            audit=audit,
        )
        return released, stats
