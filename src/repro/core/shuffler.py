"""The trusted shuffler (paper §3.3).

Performs, in order, the three PROCHLO-style operations the paper
specifies:

1. **Anonymization** — every received report is stripped of all
   metadata (the in-process stand-in for discarding IP addresses and
   enclave attestation; see DESIGN.md substitutions).
2. **Shuffling** — batch order is randomized, destroying arrival-order
   correlations.
3. **Thresholding** — tuples whose encoded context appears fewer than
   ``threshold`` times in the batch are dropped.  The threshold *is*
   the crowd-blending ``l`` (§4).

The shuffler returns both the released batch and a
:class:`~repro.privacy.crowd_blending.CrowdBlendingAudit` so callers
can assert the privacy invariant held (the audit on released output
must always pass — a property test pins this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..privacy.crowd_blending import CrowdBlendingAudit, verify_crowd_blending
from ..utils.rng import ensure_rng
from ..utils.validation import check_positive_int
from .payload import (
    EncodedReport,
    encoded_reports_from_arrays,
    encoded_reports_to_arrays,
)

__all__ = ["Shuffler", "ShufflerStats"]


@dataclass(frozen=True)
class ShufflerStats:
    """Book-keeping for one shuffler batch.

    ``n_quarantined`` counts malformed tuples refused at the door —
    negative or out-of-range codes, negative actions, non-finite
    rewards, or whole batches with misaligned columns — which are
    excluded *before* shuffling and thresholding, so they can never
    reach the released stream or skew the crowd-blending audit.
    """

    n_received: int
    n_released: int
    n_dropped: int
    codes_received: int
    codes_released: int
    audit: CrowdBlendingAudit
    n_quarantined: int = 0


class Shuffler:
    """Anonymize → shuffle → threshold (paper §3.3).

    Parameters
    ----------
    threshold:
        Minimum per-code batch frequency for release (the crowd-blending
        ``l``).
    seed:
        Randomness for the shuffle permutation.
    n_codes:
        Size of the valid code space, when known (the encoder's
        codebook size).  Codes ``>= n_codes`` are then quarantined as
        out-of-range; ``None`` (default) only rejects negatives —
        raw-signature code spaces can be huge and sparse.

    Malformed input — a device shipping garbage, a corrupted transport
    batch — is **quarantined, not raised**: collection is the
    production hot loop, and one bad reporter must not stall every
    honest one.  Quarantined tuples are counted per batch
    (``ShufflerStats.n_quarantined``) and cumulatively
    (:attr:`total_quarantined`), and never reach the shuffle,
    threshold, release, or audit stages.
    """

    def __init__(
        self, threshold: int = 10, *, seed=None, n_codes: int | None = None
    ) -> None:
        self.threshold = check_positive_int(threshold, name="threshold")
        if n_codes is not None:
            n_codes = check_positive_int(n_codes, name="n_codes")
        self.n_codes = n_codes
        self._rng = ensure_rng(seed)
        # asynchronous-collection buffer: column triples accumulated by
        # buffer_arrays, released by release_ready when thresholds fill
        self._pending: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        #: malformed tuples quarantined over this shuffler's lifetime
        self.total_quarantined = 0
        # quarantined since the last release_ready (reported in its stats)
        self._pending_quarantined = 0

    def _sanitize(
        self, codes: np.ndarray, actions: np.ndarray, rewards: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """Split off malformed rows; returns the clean columns + bad count.

        Runs *before* the shuffle permutation, so a batch with nothing
        malformed consumes the RNG exactly as it always did.
        """
        bad = (codes < 0) | (actions < 0) | ~np.isfinite(rewards)
        if self.n_codes is not None:
            bad |= codes >= self.n_codes
        n_bad = int(np.count_nonzero(bad))
        if n_bad:
            good = ~bad
            codes, actions, rewards = codes[good], actions[good], rewards[good]
        return codes, actions, rewards, n_bad

    def process(
        self, reports: Sequence[EncodedReport]
    ) -> tuple[list[EncodedReport], ShufflerStats]:
        """Run one batch through the three-stage pipeline.

        Implemented over the columnar representation: converting to
        arrays *is* the anonymization step (array form carries no
        metadata), and shuffling/thresholding become one permutation
        plus one bincount instead of per-report Python work.

        Returns
        -------
        (released, stats)
            ``released`` is the anonymized, shuffled, thresholded batch;
            ``stats.audit`` is the crowd-blending audit of the release
            (guaranteed satisfied by construction).
        """
        codes, actions, rewards = encoded_reports_to_arrays(reports)
        r_codes, r_actions, r_rewards, stats = self.process_arrays(codes, actions, rewards)
        released = encoded_reports_from_arrays(r_codes, r_actions, r_rewards)
        return released, stats

    def process_arrays(
        self, codes: np.ndarray, actions: np.ndarray, rewards: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, ShufflerStats]:
        """Columnar fast path: anonymize → shuffle → threshold on arrays.

        The per-batch RNG consumption is identical to the object path
        (one permutation draw for a non-empty batch, nothing for an
        empty one), so object and array callers are interchangeable
        mid-stream.
        """
        codes = np.asarray(codes, dtype=np.intp).ravel()
        actions = np.asarray(actions, dtype=np.intp).ravel()
        rewards = np.asarray(rewards, dtype=np.float64).ravel()
        n_received = codes.shape[0]
        # 0. quarantine — malformed tuples never reach the pipeline
        codes, actions, rewards, n_quarantined = self._sanitize(
            codes, actions, rewards
        )
        self.total_quarantined += n_quarantined
        n_clean = codes.shape[0]
        # 1. anonymization — the columnar form carries no metadata.
        # 2. shuffling
        if n_clean:
            order = self._rng.permutation(n_clean)
            codes, actions, rewards = codes[order], actions[order], rewards[order]
        # 3. thresholding (via one unique call, not bincount: code
        # spaces can be huge and sparse, e.g. 2^30 for wide LSH
        # signatures; the same counts drive the release mask and both
        # code-diversity stats)
        codes_received = codes_released = 0
        if n_clean:
            _, inverse, batch_counts = np.unique(
                codes, return_inverse=True, return_counts=True
            )
            codes_received = int(batch_counts.size)
            released_mask = batch_counts >= self.threshold
            codes_released = int(np.count_nonzero(released_mask))
            keep = released_mask[inverse]
            codes, actions, rewards = codes[keep], actions[keep], rewards[keep]
        audit = verify_crowd_blending(codes, self.threshold)
        stats = ShufflerStats(
            n_received=n_received,
            n_released=int(codes.shape[0]),
            n_dropped=n_clean - int(codes.shape[0]),
            codes_received=codes_received,
            codes_released=codes_released,
            audit=audit,
            n_quarantined=n_quarantined,
        )
        return codes, actions, rewards, stats

    # ------------------------------------------------------------------ #
    # asynchronous collection: devices report on their own clocks, the
    # shuffler releases when thresholds fill — no global round barrier
    @property
    def n_pending(self) -> int:
        """Tuples buffered but not yet released (awaiting crowd-mates)."""
        return sum(c.shape[0] for c, _, _ in self._pending)

    def buffer_arrays(
        self, codes: np.ndarray, actions: np.ndarray, rewards: np.ndarray
    ) -> int:
        """Accept one columnar report batch into the pending buffer.

        Nothing is released here — arrival time stops mattering the
        moment tuples enter the buffer (they are anonymized to columns
        immediately and shuffled with the whole buffer at the next
        :meth:`release_ready`).  Returns the new pending count.

        Malformed input is quarantined, never raised: misaligned
        columns void the whole batch (tuples cannot be paired up), and
        out-of-range rows of an aligned batch are dropped row-wise —
        both counted into :attr:`total_quarantined` and the next
        :meth:`release_ready` stats, while collection continues.
        """
        codes = np.asarray(codes, dtype=np.intp).ravel()
        actions = np.asarray(actions, dtype=np.intp).ravel()
        rewards = np.asarray(rewards, dtype=np.float64).ravel()
        if not (codes.shape[0] == actions.shape[0] == rewards.shape[0]):
            n_bad = int(max(codes.shape[0], actions.shape[0], rewards.shape[0]))
            self.total_quarantined += n_bad
            self._pending_quarantined += n_bad
            return self.n_pending
        codes, actions, rewards, n_bad = self._sanitize(codes, actions, rewards)
        self.total_quarantined += n_bad
        self._pending_quarantined += n_bad
        if codes.shape[0]:
            self._pending.append((codes, actions, rewards))
        return self.n_pending

    def buffer_reports(self, reports: Sequence[EncodedReport]) -> int:
        """Object-path convenience for :meth:`buffer_arrays`."""
        return self.buffer_arrays(*encoded_reports_to_arrays(reports))

    def release_ready(
        self, *, final: bool = False
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, ShufflerStats]:
        """Release every pending tuple whose code's crowd has filled.

        The whole buffer is shuffled (one permutation draw when
        non-empty, the same RNG discipline as :meth:`process_arrays`),
        then codes appearing at least ``threshold`` times *across the
        buffer* release; sub-threshold tuples stay pending — they wait
        for crowd-mates from later reports instead of being dropped,
        which is the asynchronous analogue of the per-batch threshold.
        ``final=True`` drops the stragglers instead (end of deployment:
        their crowd never arrived), leaving the buffer empty.

        Crowd-blending holds per release by construction (every
        released code brought ``>= threshold`` tuples with it), and
        ``stats.audit`` asserts it.  In ``stats``, ``n_received``
        counts the tuples considered (the whole buffer) and
        ``n_dropped`` the tuples *permanently* dropped — zero unless
        ``final`` (retained tuples are neither released nor dropped).
        """
        if self._pending:
            codes = np.concatenate([c for c, _, _ in self._pending])
            actions = np.concatenate([a for _, a, _ in self._pending])
            rewards = np.concatenate([r for _, _, r in self._pending])
        else:
            codes = np.empty(0, dtype=np.intp)
            actions = np.empty(0, dtype=np.intp)
            rewards = np.empty(0, dtype=np.float64)
        n_buffered = codes.shape[0]
        if n_buffered:
            order = self._rng.permutation(n_buffered)
            codes, actions, rewards = codes[order], actions[order], rewards[order]
        codes_received = codes_released = 0
        if n_buffered:
            _, inverse, counts = np.unique(
                codes, return_inverse=True, return_counts=True
            )
            codes_received = int(counts.size)
            released_mask = counts >= self.threshold
            codes_released = int(np.count_nonzero(released_mask))
            keep = released_mask[inverse]
            retained = (codes[~keep], actions[~keep], rewards[~keep])
            codes, actions, rewards = codes[keep], actions[keep], rewards[keep]
        else:
            retained = (codes, actions, rewards)
        n_released = int(codes.shape[0])
        n_retained = int(retained[0].shape[0])
        self._pending = [] if final or n_retained == 0 else [retained]
        audit = verify_crowd_blending(codes, self.threshold)
        n_quarantined = self._pending_quarantined
        self._pending_quarantined = 0
        stats = ShufflerStats(
            n_received=n_buffered,
            n_released=n_released,
            n_dropped=n_buffered - n_released if final else 0,
            codes_received=codes_received,
            codes_released=codes_released,
            audit=audit,
            n_quarantined=n_quarantined,
        )
        return codes, actions, rewards, stats
