"""The trusted shuffler (paper §3.3).

Performs, in order, the three PROCHLO-style operations the paper
specifies:

1. **Anonymization** — every received report is stripped of all
   metadata (the in-process stand-in for discarding IP addresses and
   enclave attestation; see DESIGN.md substitutions).
2. **Shuffling** — batch order is randomized, destroying arrival-order
   correlations.
3. **Thresholding** — tuples whose encoded context appears fewer than
   ``threshold`` times in the batch are dropped.  The threshold *is*
   the crowd-blending ``l`` (§4).

The shuffler returns both the released batch and a
:class:`~repro.privacy.crowd_blending.CrowdBlendingAudit` so callers
can assert the privacy invariant held (the audit on released output
must always pass — a property test pins this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..privacy.crowd_blending import CrowdBlendingAudit, verify_crowd_blending
from ..utils.rng import ensure_rng
from ..utils.validation import check_positive_int
from .payload import (
    EncodedReport,
    encoded_reports_from_arrays,
    encoded_reports_to_arrays,
)

__all__ = ["Shuffler", "ShufflerStats"]


@dataclass(frozen=True)
class ShufflerStats:
    """Book-keeping for one shuffler batch."""

    n_received: int
    n_released: int
    n_dropped: int
    codes_received: int
    codes_released: int
    audit: CrowdBlendingAudit


class Shuffler:
    """Anonymize → shuffle → threshold (paper §3.3).

    Parameters
    ----------
    threshold:
        Minimum per-code batch frequency for release (the crowd-blending
        ``l``).
    seed:
        Randomness for the shuffle permutation.
    """

    def __init__(self, threshold: int = 10, *, seed=None) -> None:
        self.threshold = check_positive_int(threshold, name="threshold")
        self._rng = ensure_rng(seed)

    def process(
        self, reports: Sequence[EncodedReport]
    ) -> tuple[list[EncodedReport], ShufflerStats]:
        """Run one batch through the three-stage pipeline.

        Implemented over the columnar representation: converting to
        arrays *is* the anonymization step (array form carries no
        metadata), and shuffling/thresholding become one permutation
        plus one bincount instead of per-report Python work.

        Returns
        -------
        (released, stats)
            ``released`` is the anonymized, shuffled, thresholded batch;
            ``stats.audit`` is the crowd-blending audit of the release
            (guaranteed satisfied by construction).
        """
        codes, actions, rewards = encoded_reports_to_arrays(reports)
        r_codes, r_actions, r_rewards, stats = self.process_arrays(codes, actions, rewards)
        released = encoded_reports_from_arrays(r_codes, r_actions, r_rewards)
        return released, stats

    def process_arrays(
        self, codes: np.ndarray, actions: np.ndarray, rewards: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, ShufflerStats]:
        """Columnar fast path: anonymize → shuffle → threshold on arrays.

        The per-batch RNG consumption is identical to the object path
        (one permutation draw for a non-empty batch, nothing for an
        empty one), so object and array callers are interchangeable
        mid-stream.
        """
        codes = np.asarray(codes, dtype=np.intp).ravel()
        actions = np.asarray(actions, dtype=np.intp).ravel()
        rewards = np.asarray(rewards, dtype=np.float64).ravel()
        n_received = codes.shape[0]
        # 1. anonymization — the columnar form carries no metadata.
        # 2. shuffling
        if n_received:
            order = self._rng.permutation(n_received)
            codes, actions, rewards = codes[order], actions[order], rewards[order]
        # 3. thresholding (via one unique call, not bincount: code
        # spaces can be huge and sparse, e.g. 2^30 for wide LSH
        # signatures; the same counts drive the release mask and both
        # code-diversity stats)
        codes_received = codes_released = 0
        if n_received:
            _, inverse, batch_counts = np.unique(
                codes, return_inverse=True, return_counts=True
            )
            codes_received = int(batch_counts.size)
            released_mask = batch_counts >= self.threshold
            codes_released = int(np.count_nonzero(released_mask))
            keep = released_mask[inverse]
            codes, actions, rewards = codes[keep], actions[keep], rewards[keep]
        audit = verify_crowd_blending(codes, self.threshold)
        stats = ShufflerStats(
            n_received=n_received,
            n_released=int(codes.shape[0]),
            n_dropped=n_received - int(codes.shape[0]),
            codes_received=codes_received,
            codes_released=codes_released,
            audit=audit,
        )
        return codes, actions, rewards, stats
