"""The local (on-device) P2B agent (paper §3, Fig. 1).

A :class:`LocalAgent` couples three components:

* a **bandit policy** (LinUCB by default) that proposes actions and
  learns from local feedback;
* an optional **encoder** mapping raw contexts to codes — in the
  *warm-private* setting the agent also *acts* on the one-hot encoded
  context (§5.3: "Private agents use the encoded value as the
  context"), so the policy's feature space is ``R^k``;
* an optional **participation policy** that decides when an encoded
  interaction becomes an :class:`~repro.core.payload.EncodedReport`.

The three evaluation settings of §5 correspond to:

==================  =======================  =====================
setting             acting context           reports
==================  =======================  =====================
cold                raw ``x ∈ R^d``          never
warm-nonprivate     raw ``x ∈ R^d``          :class:`RawReport`
warm-private        one-hot code ``∈ R^k``   :class:`EncodedReport`
==================  =======================  =====================
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..bandits.base import BanditPolicy
from ..encoding.base import Encoder
from ..utils.exceptions import ConfigError
from ..utils.validation import check_vector
from .config import AgentMode
from .participation import RandomizedParticipation
from .payload import EncodedReport, PendingReports, RawReport, ReportLog

__all__ = ["LocalAgent"]


class LocalAgent:
    """On-device contextual bandit with optional privacy-preserving reporting.

    Parameters
    ----------
    agent_id:
        Identifier carried only in report *metadata* (stripped by the
        shuffler); exists so tests can prove anonymization happens.
    policy:
        The bandit policy.  Its ``n_features`` must equal the raw
        context dimension (cold / warm-nonprivate) or the codebook size
        ``k`` (warm-private).
    mode:
        One of :class:`~repro.core.config.AgentMode`.
    encoder:
        Required for ``warm-private`` (used for both acting and
        reporting); optional for other modes.
    participation:
        Required for the two warm modes; ignored for ``cold``.
    private_context:
        ``"one-hot"`` (default) or ``"centroid"`` — the warm-private
        acting representation (see
        :class:`~repro.core.config.P2BConfig.private_context`).

    Examples
    --------
    >>> from repro.bandits import LinUCB
    >>> agent = LocalAgent("u1", LinUCB(n_arms=3, n_features=4, seed=0),
    ...                    mode="cold")
    >>> a = agent.act(np.array([0.4, 0.3, 0.2, 0.1]))
    >>> agent.learn(np.array([0.4, 0.3, 0.2, 0.1]), a, reward=1.0)
    """

    def __init__(
        self,
        agent_id: str,
        policy: BanditPolicy,
        *,
        mode: str = AgentMode.COLD,
        encoder: Encoder | None = None,
        participation: RandomizedParticipation | None = None,
        private_context: str = "one-hot",
    ) -> None:
        if mode not in AgentMode.ALL:
            raise ConfigError(f"mode must be one of {AgentMode.ALL}, got {mode!r}")
        if private_context not in ("one-hot", "centroid"):
            raise ConfigError(
                f"private_context must be 'one-hot' or 'centroid', got {private_context!r}"
            )
        if mode == AgentMode.WARM_PRIVATE:
            if encoder is None:
                raise ConfigError("warm-private agents require an encoder")
            if private_context == "one-hot" and policy.n_features != encoder.n_codes:
                raise ConfigError(
                    "warm-private agents act on one-hot codes: policy.n_features "
                    f"({policy.n_features}) must equal encoder.n_codes ({encoder.n_codes})"
                )
            if private_context == "centroid" and policy.n_features != encoder.n_features:
                raise ConfigError(
                    "centroid-context agents act on codebook centroids: policy.n_features "
                    f"({policy.n_features}) must equal encoder.n_features ({encoder.n_features})"
                )
        if mode != AgentMode.COLD and participation is None:
            raise ConfigError(f"{mode} agents require a participation policy")
        self.agent_id = str(agent_id)
        self.policy = policy
        self.mode = mode
        self.encoder = encoder
        self.participation = participation
        self.private_context = private_context
        #: pending reports; may transiently hold columnar
        #: :class:`~repro.core.payload.PendingReports` markers dropped
        #: by the fleet engine — the ``outbox`` property materializes
        #: them on access, so object-path consumers never see them
        self._outbox: list[EncodedReport | RawReport | PendingReports] = []
        self.n_interactions = 0
        self.total_reward = 0.0

    # ------------------------------------------------------------------ #
    def acting_context(self, context: np.ndarray) -> np.ndarray:
        """The feature vector the policy actually sees for ``context``."""
        context = check_vector(context, name="context")
        if self.mode == AgentMode.WARM_PRIVATE:
            encoder = self.encoder
            if self.private_context == "centroid":
                return encoder.decode(encoder.encode(context))  # type: ignore[union-attr]
            return encoder.one_hot_context(context)  # type: ignore[union-attr]
        return context

    def act(self, context: np.ndarray) -> int:
        """Propose an action for the observed raw context."""
        return self.policy.select(self.acting_context(context))

    def learn(self, context: np.ndarray, action: int, reward: float) -> None:
        """Incorporate feedback locally and maybe enqueue a report.

        Reporting never blocks or alters learning: the device learns
        from every interaction, while the participation policy decides
        opportunistically whether this interaction is *also* offered to
        the collection pipeline.
        """
        ctx = check_vector(context, name="context")
        self.policy.update(self.acting_context(ctx), action, reward)
        self.record_interaction(ctx, action, reward)

    def record_interaction(self, context: np.ndarray, action: int, reward: float) -> None:
        """Post-update bookkeeping: counters plus the reporting pipeline.

        Split out of :meth:`learn` so the fleet engine
        (:mod:`repro.sim`), which applies the policy update through
        stacked state instead of ``policy.update``, shares this exact
        code path — participation RNG consumption, report metadata
        (including ``interaction_index``), and encode-at-report-time all
        live only here.
        """
        self.n_interactions += 1
        self.total_reward += float(reward)
        if self.mode == AgentMode.COLD or self.participation is None:
            return
        ctx = np.asarray(context, dtype=np.float64)
        sampled = self.participation.offer((ctx.copy(), int(action), float(reward)))
        if sampled is None:
            return
        s_ctx, s_action, s_reward = sampled
        metadata = {"agent_id": self.agent_id, "interaction_index": self.n_interactions}
        if self.mode == AgentMode.WARM_PRIVATE:
            code = self.encoder.encode(s_ctx)  # type: ignore[union-attr]
            self._outbox.append(
                EncodedReport(code=code, action=s_action, reward=s_reward, metadata=metadata)
            )
        else:
            self._outbox.append(
                RawReport(context=s_ctx, action=s_action, reward=s_reward, metadata=metadata)
            )

    def step(self, context: np.ndarray, reward_fn) -> tuple[int, float]:
        """One full interaction: act, obtain reward via ``reward_fn(action)``,
        learn.  Returns ``(action, reward)``."""
        action = self.act(context)
        reward = float(reward_fn(action))
        self.learn(context, action, reward)
        return action, reward

    # ------------------------------------------------------------------ #
    @property
    def outbox(self) -> list[EncodedReport | RawReport]:
        """Pending reports as objects (the scalar reference view).

        The fleet engine records reports columnar-side and parks
        :class:`~repro.core.payload.PendingReports` markers here;
        reading this property materializes them in place — same
        reports, same metadata, same order as the scalar path — so any
        object-path consumer stays oblivious.  The columnar collection
        fast path (:meth:`~repro.core.system.P2BSystem.collect`)
        deliberately bypasses this property to keep arrays arrays.
        """
        if any(isinstance(e, PendingReports) for e in self._outbox):
            expanded: list[EncodedReport | RawReport] = []
            for entry in self._outbox:
                if isinstance(entry, PendingReports):
                    expanded.extend(entry.materialize())
                else:
                    expanded.append(entry)
            self._outbox = expanded
        return self._outbox  # type: ignore[return-value]

    @outbox.setter
    def outbox(self, value: list[EncodedReport | RawReport]) -> None:
        self._outbox = list(value)

    def adopt_report_log(self, log: ReportLog, row: int) -> None:
        """Attach a columnar report log (the fleet engine's outbox form).

        Reports the engine appends to ``log`` under ``row`` belong to
        this agent; they are drained through the same outbox semantics
        as object reports.
        """
        self._outbox.append(PendingReports(log, row))

    def pending_entries(self) -> list[EncodedReport | RawReport | PendingReports]:
        """The raw pending-outbox entries, *without* materializing.

        The columnar collection path
        (:func:`~repro.core.payload.drain_report_batches`) inspects
        these to decide between the array and object drains; anything
        that wants report objects should use :attr:`outbox` /
        :meth:`drain_outbox` instead.
        """
        return list(self._outbox)

    def clear_pending(self) -> None:
        """Drop every pending entry (the columnar drain's commit step).

        Only meaningful after the caller has consumed the entries via
        :meth:`pending_entries` — this is how
        :func:`~repro.core.payload.drain_report_batches` mirrors the
        destructive semantics of :meth:`drain_outbox`.
        """
        self._outbox = []

    def drain_outbox(self) -> list[EncodedReport | RawReport]:
        """Remove and return all pending reports (the network send)."""
        out, self.outbox = self.outbox, []
        return out

    def warm_start(self, model_state: Mapping[str, Any]) -> None:
        """Initialize the local policy from a central-model snapshot."""
        self.policy.set_state(model_state)

    @property
    def mean_reward(self) -> float:
        """Average reward over this agent's lifetime."""
        return self.total_reward / self.n_interactions if self.n_interactions else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LocalAgent(id={self.agent_id!r}, mode={self.mode!r}, "
            f"interactions={self.n_interactions})"
        )
