"""Configuration dataclasses for P2B deployments and experiments."""

from __future__ import annotations

from dataclasses import dataclass

from ..privacy.accounting import PrivacyReport
from ..utils.exceptions import ConfigError
from ..utils.validation import check_positive_int, check_probability, check_scalar

__all__ = ["P2BConfig", "AgentMode"]


class AgentMode:
    """The paper's three evaluation settings (§5)."""

    COLD = "cold"
    WARM_PRIVATE = "warm-private"
    WARM_NONPRIVATE = "warm-nonprivate"

    ALL = (COLD, WARM_PRIVATE, WARM_NONPRIVATE)


@dataclass(frozen=True)
class P2BConfig:
    """Static parameters of a P2B deployment.

    Defaults follow the paper's experimental section: ``p=0.5``, ``q=1``,
    ``alpha=1``, shuffler threshold 10.

    Attributes
    ----------
    n_actions:
        Size of the action set ``A``.
    n_features:
        Raw context dimension ``d``.
    n_codes:
        Codebook size ``k`` (e.g. ``2**10`` synthetic, ``2**5``
        multi-label, ``2**5``/``2**7`` Criteo).
    q:
        Quantization digits.
    p:
        Participation probability (privacy lever, Eq. 3).
    window:
        Local interactions ``T`` buffered per participation coin flip.
    max_reports_per_user:
        Report budget per user (1 in all paper experiments).
    shuffler_threshold:
        Minimum batch frequency for a code to be released (= the
        crowd-blending ``l``).
    alpha:
        LinUCB exploration parameter.
    ridge:
        LinUCB ridge regularizer.
    private_context:
        How warm-private agents represent the encoded context they act
        on (§5.3 "private agents use the encoded value as the context"):
        ``"one-hot"`` — the indicator of the code in R^k (a tabular
        per-(code, arm) policy; sample-hungry but assumption-free);
        ``"centroid"`` — the code's codebook centroid in R^d (a linear
        policy over k distinct context points; far more sample-efficient
        when rewards are sparse, e.g. the Criteo replay workload).
    """

    n_actions: int
    n_features: int
    n_codes: int = 2**5
    q: int = 1
    p: float = 0.5
    window: int = 10
    max_reports_per_user: int = 1
    shuffler_threshold: int = 10
    alpha: float = 1.0
    ridge: float = 1.0
    private_context: str = "one-hot"

    def __post_init__(self) -> None:
        check_positive_int(self.n_actions, name="n_actions")
        check_positive_int(self.n_features, name="n_features", minimum=2)
        check_positive_int(self.n_codes, name="n_codes")
        check_positive_int(self.q, name="q")
        check_probability(self.p, name="p", allow_one=False)
        check_positive_int(self.window, name="window")
        check_positive_int(self.max_reports_per_user, name="max_reports_per_user", minimum=0)
        check_positive_int(self.shuffler_threshold, name="shuffler_threshold")
        check_scalar(self.alpha, name="alpha", minimum=0.0)
        check_scalar(self.ridge, name="ridge", minimum=0.0, include_min=False)
        if self.n_codes < 2:
            raise ConfigError("n_codes must be at least 2 for the encoding to be non-trivial")
        if self.private_context not in ("one-hot", "centroid"):
            raise ConfigError(
                f"private_context must be 'one-hot' or 'centroid', got {self.private_context!r}"
            )

    def privacy_report(self, *, realized_l: int | None = None) -> PrivacyReport:
        """The deployment's privacy guarantee.

        ``l`` defaults to the shuffler threshold (§4: "l can always be
        matched to the shuffler's threshold"); pass ``realized_l`` to
        report the measured smallest released crowd instead.
        """
        l = self.shuffler_threshold if realized_l is None else realized_l
        return PrivacyReport(p=self.p, l=l, tuples_per_user=max(self.max_reports_per_user, 1))
