"""Report payloads exchanged between agents, shuffler, and server.

Two payload types model the paper's two data-sharing regimes:

* :class:`EncodedReport` — the P2B tuple ``(y_t, a_t, r_{t,a})``
  (paper §3.2) plus transport metadata.  The *metadata is exactly what
  the shuffler strips* (§3.3 "Anonymization: eliminating all the
  received metadata (e.g. IP address)"), so it is kept in a separate,
  explicitly-droppable field rather than mixed into the tuple.
* :class:`RawReport` — the warm-non-private baseline's payload carrying
  the original context vector (§5, "local agents communicate the
  observed context to the server in its original form").

Both are immutable; equality ignores metadata so that tests can assert
"the shuffler changed nothing but transport information".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Sequence

import numpy as np

from ..utils.validation import check_scalar, check_vector

__all__ = [
    "EncodedReport",
    "RawReport",
    "strip_metadata",
    "encoded_reports_to_arrays",
    "encoded_reports_from_arrays",
]


@dataclass(frozen=True)
class EncodedReport:
    """The P2B interaction tuple ``(y, a, r)`` with transport metadata.

    Attributes
    ----------
    code:
        Encoded context ``y ∈ {0, …, k-1}``.
    action:
        Action index ``a``.
    reward:
        Observed reward ``r``.
    metadata:
        Transport-level information (agent id, timestamps, ...) that the
        shuffler removes before anything reaches the server.
    """

    code: int
    action: int
    reward: float
    metadata: Mapping[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.code < 0:
            raise ValueError(f"code must be non-negative, got {self.code}")
        if self.action < 0:
            raise ValueError(f"action must be non-negative, got {self.action}")
        check_scalar(self.reward, name="reward")

    def anonymized(self) -> "EncodedReport":
        """Copy with all metadata removed."""
        return replace(self, metadata={})

    @property
    def tuple3(self) -> tuple[int, int, float]:
        """The bare paper tuple ``(y, a, r)``."""
        return (self.code, self.action, self.reward)


@dataclass(frozen=True)
class RawReport:
    """Non-private payload carrying the context in its original form."""

    context: np.ndarray
    action: int
    reward: float
    metadata: Mapping[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        ctx = check_vector(self.context, name="context")
        object.__setattr__(self, "context", ctx)
        if self.action < 0:
            raise ValueError(f"action must be non-negative, got {self.action}")
        check_scalar(self.reward, name="reward")

    def __eq__(self, other: object) -> bool:  # ndarray needs custom equality
        if not isinstance(other, RawReport):
            return NotImplemented
        return (
            np.array_equal(self.context, other.context)
            and self.action == other.action
            and self.reward == other.reward
        )

    def __hash__(self) -> int:
        return hash((self.context.tobytes(), self.action, self.reward))

    def anonymized(self) -> "RawReport":
        """Copy with all metadata removed (the context itself remains —
        that is precisely the non-private baseline's weakness)."""
        return replace(self, metadata={})


def strip_metadata(reports: list[EncodedReport] | list[RawReport]):
    """Anonymize a batch of reports (list comprehension convenience)."""
    return [r.anonymized() for r in reports]


def encoded_reports_to_arrays(
    reports: Sequence[EncodedReport],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Struct-of-arrays view of an encoded batch: ``(codes, actions, rewards)``.

    The columnar form is the shuffler's and fleet engine's working
    representation; metadata is deliberately *not* carried over, so
    converting to arrays is itself an anonymization step.
    """
    n = len(reports)
    codes = np.empty(n, dtype=np.intp)
    actions = np.empty(n, dtype=np.intp)
    rewards = np.empty(n, dtype=np.float64)
    for i, r in enumerate(reports):
        codes[i] = r.code
        actions[i] = r.action
        rewards[i] = r.reward
    return codes, actions, rewards


def encoded_reports_from_arrays(
    codes: np.ndarray, actions: np.ndarray, rewards: np.ndarray
) -> list[EncodedReport]:
    """Rebuild metadata-free :class:`EncodedReport` objects from arrays.

    Round-trips exactly with :func:`encoded_reports_to_arrays` modulo
    metadata (which array form never carries): codes and actions are
    integers, rewards the same float64 values.
    """
    codes = np.asarray(codes, dtype=np.intp).ravel()
    actions = np.asarray(actions, dtype=np.intp).ravel()
    rewards = np.asarray(rewards, dtype=np.float64).ravel()
    if not (codes.shape[0] == actions.shape[0] == rewards.shape[0]):
        raise ValueError(
            "codes, actions and rewards must have matching lengths: "
            f"{codes.shape[0]}, {actions.shape[0]}, {rewards.shape[0]}"
        )
    return [
        EncodedReport(code=int(c), action=int(a), reward=float(r))
        for c, a, r in zip(codes, actions, rewards)
    ]
