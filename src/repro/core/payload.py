"""Report payloads exchanged between agents, shuffler, and server.

Two payload types model the paper's two data-sharing regimes:

* :class:`EncodedReport` — the P2B tuple ``(y_t, a_t, r_{t,a})``
  (paper §3.2) plus transport metadata.  The *metadata is exactly what
  the shuffler strips* (§3.3 "Anonymization: eliminating all the
  received metadata (e.g. IP address)"), so it is kept in a separate,
  explicitly-droppable field rather than mixed into the tuple.
* :class:`RawReport` — the warm-non-private baseline's payload carrying
  the original context vector (§5, "local agents communicate the
  observed context to the server in its original form").

Both are immutable; equality ignores metadata so that tests can assert
"the shuffler changed nothing but transport information".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from ..utils.validation import check_scalar, check_vector

__all__ = [
    "EncodedReport",
    "RawReport",
    "ReportBatch",
    "ReportLog",
    "PendingReports",
    "strip_metadata",
    "drain_report_batches",
    "encoded_reports_to_arrays",
    "encoded_reports_from_arrays",
]


@dataclass(frozen=True)
class EncodedReport:
    """The P2B interaction tuple ``(y, a, r)`` with transport metadata.

    Attributes
    ----------
    code:
        Encoded context ``y ∈ {0, …, k-1}``.
    action:
        Action index ``a``.
    reward:
        Observed reward ``r``.
    metadata:
        Transport-level information (agent id, timestamps, ...) that the
        shuffler removes before anything reaches the server.
    """

    code: int
    action: int
    reward: float
    metadata: Mapping[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.code < 0:
            raise ValueError(f"code must be non-negative, got {self.code}")
        if self.action < 0:
            raise ValueError(f"action must be non-negative, got {self.action}")
        check_scalar(self.reward, name="reward")

    def anonymized(self) -> "EncodedReport":
        """Copy with all metadata removed."""
        return replace(self, metadata={})

    @property
    def tuple3(self) -> tuple[int, int, float]:
        """The bare paper tuple ``(y, a, r)``."""
        return (self.code, self.action, self.reward)


@dataclass(frozen=True)
class RawReport:
    """Non-private payload carrying the context in its original form."""

    context: np.ndarray
    action: int
    reward: float
    metadata: Mapping[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        ctx = check_vector(self.context, name="context")
        object.__setattr__(self, "context", ctx)
        if self.action < 0:
            raise ValueError(f"action must be non-negative, got {self.action}")
        check_scalar(self.reward, name="reward")

    def __eq__(self, other: object) -> bool:  # ndarray needs custom equality
        if not isinstance(other, RawReport):
            return NotImplemented
        return (
            np.array_equal(self.context, other.context)
            and self.action == other.action
            and self.reward == other.reward
        )

    def __hash__(self) -> int:
        return hash((self.context.tobytes(), self.action, self.reward))

    def anonymized(self) -> "RawReport":
        """Copy with all metadata removed (the context itself remains —
        that is precisely the non-private baseline's weakness)."""
        return replace(self, metadata={})


def strip_metadata(reports: list[EncodedReport] | list[RawReport]):
    """Anonymize a batch of reports (list comprehension convenience)."""
    return [r.anonymized() for r in reports]


@dataclass
class ReportBatch:
    """Struct-of-arrays form of a pending-report batch.

    The columnar pipeline's working representation from device to
    server: ``m`` reports are ``m`` rows across parallel arrays instead
    of ``m`` payload objects.  Exactly one of :attr:`codes` (encoded
    batches) and :attr:`contexts` (raw batches) is set.

    ``agent_rows`` and ``interaction_indices`` carry the transport
    metadata in columnar form (who reported, at which lifetime
    interaction); like object metadata they are dropped the moment the
    batch enters the shuffler.  ``agent_ids`` (optional) maps agent
    rows to identifiers so :meth:`to_reports` can rebuild the object
    view — metadata included — bit-identically to the scalar path.
    """

    actions: np.ndarray  #: (m,) intp
    rewards: np.ndarray  #: (m,) float64
    agent_rows: np.ndarray  #: (m,) intp — caller-defined agent numbering
    interaction_indices: np.ndarray  #: (m,) intp — per-agent lifetime index
    codes: np.ndarray | None = None  #: (m,) intp, encoded batches only
    contexts: np.ndarray | None = None  #: (m, d) float64, raw batches only
    agent_ids: tuple[str, ...] | None = None  #: agent_row -> identifier

    def __post_init__(self) -> None:
        if (self.codes is None) == (self.contexts is None):
            raise ValueError("exactly one of codes/contexts must be set")
        m = self.actions.shape[0]
        payload_len = self.codes.shape[0] if self.codes is not None else self.contexts.shape[0]
        if not (
            m
            == self.rewards.shape[0]
            == self.agent_rows.shape[0]
            == self.interaction_indices.shape[0]
            == payload_len
        ):
            raise ValueError("ReportBatch columns must have matching lengths")

    @property
    def kind(self) -> str:
        """``"encoded"`` (code payloads) or ``"raw"`` (context payloads)."""
        return "encoded" if self.codes is not None else "raw"

    def __len__(self) -> int:
        return int(self.actions.shape[0])

    @classmethod
    def empty(cls, kind: str, *, n_features: int = 0) -> "ReportBatch":
        """A zero-row batch of the given kind."""
        none = np.empty(0, dtype=np.intp)
        return cls(
            actions=none,
            rewards=np.empty(0, dtype=np.float64),
            agent_rows=none.copy(),
            interaction_indices=none.copy(),
            codes=none.copy() if kind == "encoded" else None,
            contexts=np.empty((0, n_features), dtype=np.float64) if kind == "raw" else None,
        )

    def take(self, order: np.ndarray) -> "ReportBatch":
        """Reindexed copy (gather) of this batch."""
        return ReportBatch(
            actions=self.actions[order],
            rewards=self.rewards[order],
            agent_rows=self.agent_rows[order],
            interaction_indices=self.interaction_indices[order],
            codes=self.codes[order] if self.codes is not None else None,
            contexts=self.contexts[order] if self.contexts is not None else None,
            agent_ids=self.agent_ids,
        )

    @staticmethod
    def concat(batches: Sequence["ReportBatch"], kind: str) -> "ReportBatch":
        """Row-concatenate batches of one kind (ids are not merged)."""
        batches = [b for b in batches if len(b)]
        if not batches:
            return ReportBatch.empty(kind)
        if any(b.kind != kind for b in batches):
            raise ValueError("cannot concatenate batches of different kinds")
        return ReportBatch(
            actions=np.concatenate([b.actions for b in batches]),
            rewards=np.concatenate([b.rewards for b in batches]),
            agent_rows=np.concatenate([b.agent_rows for b in batches]),
            interaction_indices=np.concatenate([b.interaction_indices for b in batches]),
            codes=np.concatenate([b.codes for b in batches]) if kind == "encoded" else None,
            contexts=np.concatenate([b.contexts for b in batches]) if kind == "raw" else None,
        )

    def to_reports(self) -> list["EncodedReport | RawReport"]:
        """Object view: the exact reports the scalar path would have built.

        Metadata (``agent_id`` + ``interaction_index``) is attached when
        :attr:`agent_ids` is present, matching
        :meth:`~repro.core.agent.LocalAgent.record_interaction` field
        for field; otherwise the reports are metadata-free (the
        post-anonymization form).
        """
        out: list[EncodedReport | RawReport] = []
        for i in range(len(self)):
            metadata: Mapping[str, Any] = {}
            if self.agent_ids is not None:
                metadata = {
                    "agent_id": self.agent_ids[int(self.agent_rows[i])],
                    "interaction_index": int(self.interaction_indices[i]),
                }
            if self.codes is not None:
                out.append(
                    EncodedReport(
                        code=int(self.codes[i]),
                        action=int(self.actions[i]),
                        reward=float(self.rewards[i]),
                        metadata=metadata,
                    )
                )
            else:
                out.append(
                    RawReport(
                        context=self.contexts[i].copy(),
                        action=int(self.actions[i]),
                        reward=float(self.rewards[i]),
                        metadata=metadata,
                    )
                )
        return out


class ReportLog:
    """Append-only columnar store of one agent group's pending reports.

    The fleet engine's native outbox: each shard owns one log per run
    and appends per-round report columns; agents reference their rows
    through :class:`PendingReports` markers in their outboxes, so the
    object API (:meth:`LocalAgent.drain_outbox`) and the columnar API
    (:func:`drain_report_batches`) both see exactly the reports the
    scalar path would have produced — the former by materializing
    views, the latter as pure array gathers.

    Entries are drained at most once (a taken row is dead), mirroring
    the destructive semantics of draining an object outbox.
    """

    def __init__(self, kind: str, agent_ids: Sequence[str]) -> None:
        if kind not in ("encoded", "raw"):
            raise ValueError(f"kind must be 'encoded' or 'raw', got {kind!r}")
        self.kind = kind
        self.agent_ids = tuple(str(a) for a in agent_ids)
        self._chunks: list[ReportBatch] = []
        self._batch: ReportBatch | None = None
        self._live: np.ndarray | None = None
        # lazy row -> entry-positions index so per-agent takes (the
        # object-view materialization path) stay O(entries-of-agent)
        # instead of rescanning the whole log per agent
        self._row_index: dict[int, np.ndarray] | None = None

    def append(
        self,
        agent_rows: np.ndarray,
        payload: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        interaction_indices: np.ndarray,
    ) -> None:
        """Append one round's reports (rows aligned across the columns)."""
        self._chunks.append(
            ReportBatch(
                actions=np.asarray(actions, dtype=np.intp),
                rewards=np.asarray(rewards, dtype=np.float64),
                agent_rows=np.asarray(agent_rows, dtype=np.intp),
                interaction_indices=np.asarray(interaction_indices, dtype=np.intp),
                codes=np.asarray(payload, dtype=np.intp) if self.kind == "encoded" else None,
                contexts=np.asarray(payload, dtype=np.float64) if self.kind == "raw" else None,
            )
        )

    def _finalize(self) -> None:
        if self._chunks:
            merged = ReportBatch.concat(
                ([self._batch] if self._batch is not None else []) + self._chunks,
                self.kind,
            )
            n_new = len(merged) - (len(self._batch) if self._batch is not None else 0)
            old_live = self._live if self._live is not None else np.empty(0, dtype=bool)
            self._live = np.concatenate([old_live, np.ones(n_new, dtype=bool)])
            self._batch = merged
            self._chunks = []
            self._row_index = None
        elif self._batch is None:
            self._batch = ReportBatch.empty(self.kind)
            self._live = np.zeros(0, dtype=bool)

    def _positions_of(self, agent_rows: np.ndarray) -> np.ndarray:
        """Entry positions of the given rows, ascending (append order).

        One stable grouping pass over the log, cached until the next
        append — so draining a whole population agent by agent costs
        one sort total, not one full-log scan per agent.
        """
        if self._row_index is None:
            self._row_index = {}
            if self._batch.agent_rows.size:
                order = np.argsort(self._batch.agent_rows, kind="stable")
                sorted_rows = self._batch.agent_rows[order]
                starts = np.concatenate([[0], np.nonzero(np.diff(sorted_rows))[0] + 1])
                ends = np.concatenate([starts[1:], [sorted_rows.size]])
                self._row_index = {
                    int(sorted_rows[s]): order[s:e] for s, e in zip(starts, ends)
                }
        empty = np.empty(0, dtype=np.intp)
        parts = [self._row_index.get(int(r), empty) for r in np.unique(agent_rows)]
        positions = np.concatenate(parts) if parts else empty
        return np.sort(positions)

    def take_rows(self, agent_rows: np.ndarray) -> ReportBatch:
        """Drain the still-pending entries of the given agent rows.

        Entries come back in append (chronological) order, carrying
        :attr:`agent_ids` so object views can be materialized; taken
        entries are dead for every future take.
        """
        self._finalize()
        assert self._batch is not None and self._live is not None
        agent_rows = np.asarray(agent_rows, dtype=np.intp)
        positions = self._positions_of(agent_rows)
        positions = positions[self._live[positions]]
        self._live[positions] = False
        taken = self._batch.take(positions)
        taken.agent_ids = self.agent_ids
        return taken


class PendingReports:
    """Outbox marker: one agent's pending rows in a :class:`ReportLog`.

    A lightweight stand-in the fleet engine drops into
    ``LocalAgent.outbox`` instead of per-report objects; touching the
    object API materializes it (:meth:`materialize`), while the
    columnar collection path consumes the underlying log directly.
    """

    __slots__ = ("log", "row")

    def __init__(self, log: ReportLog, row: int) -> None:
        self.log = log
        self.row = int(row)

    def materialize(self) -> list[EncodedReport | RawReport]:
        """Drain this agent's log rows as the equivalent report objects."""
        return self.log.take_rows(np.array([self.row], dtype=np.intp)).to_reports()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PendingReports(kind={self.log.kind!r}, row={self.row})"


def drain_report_batches(
    agents: Iterable,
) -> tuple[ReportBatch, ReportBatch] | None:
    """Drain a population's pending reports in columnar form.

    Returns ``(encoded, raw)`` batches holding every pending report of
    ``agents`` — ordered agent-major by the given agent order and
    chronologically within each agent, i.e. exactly the order
    sequential per-agent ``drain_outbox`` concatenation would produce —
    or ``None`` when any agent holds a materialized report *object*,
    in which case the caller must use the object path (mixed histories
    cannot be ordered columnar-side without materializing anyway).

    On success every involved outbox is emptied and the taken log rows
    are dead, mirroring the destructive object-path drain.
    """
    slices: list[tuple[PendingReports, int]] = []
    touched: list = []
    for pos, agent in enumerate(agents):
        for entry in agent.pending_entries():
            if not isinstance(entry, PendingReports):
                return None
            slices.append((entry, pos))
        touched.append(agent)
    for agent in touched:
        agent.clear_pending()

    by_kind: dict[str, list[ReportBatch]] = {"encoded": [], "raw": []}
    by_log: dict[int, tuple[ReportLog, list[int], list[int]]] = {}
    for entry, pos in slices:
        log_id = id(entry.log)
        if log_id not in by_log:
            by_log[log_id] = (entry.log, [], [])
        _, rows, poses = by_log[log_id]
        rows.append(entry.row)
        poses.append(pos)
    for log, rows, poses in by_log.values():
        row_arr = np.asarray(rows, dtype=np.intp)
        part = log.take_rows(row_arr)
        part.agent_ids = None
        # remap log-local agent rows to the caller's agent positions so
        # the cross-log sort below is over one shared numbering
        posarr = np.full(len(log.agent_ids), -1, dtype=np.intp)
        posarr[row_arr] = np.asarray(poses, dtype=np.intp)
        part.agent_rows = posarr[part.agent_rows]
        by_kind[log.kind].append(part)

    out = []
    for kind in ("encoded", "raw"):
        batch = ReportBatch.concat(by_kind[kind], kind)
        if len(batch):
            # agent-major, chronological within agent: the per-agent
            # lifetime interaction index is the chronological key (it
            # is strictly increasing per agent across runs and logs)
            order = np.lexsort((batch.interaction_indices, batch.agent_rows))
            batch = batch.take(order)
        out.append(batch)
    return out[0], out[1]


def encoded_reports_to_arrays(
    reports: Sequence[EncodedReport],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Struct-of-arrays view of an encoded batch: ``(codes, actions, rewards)``.

    The columnar form is the shuffler's and fleet engine's working
    representation; metadata is deliberately *not* carried over, so
    converting to arrays is itself an anonymization step.
    """
    n = len(reports)
    codes = np.empty(n, dtype=np.intp)
    actions = np.empty(n, dtype=np.intp)
    rewards = np.empty(n, dtype=np.float64)
    for i, r in enumerate(reports):
        codes[i] = r.code
        actions[i] = r.action
        rewards[i] = r.reward
    return codes, actions, rewards


def encoded_reports_from_arrays(
    codes: np.ndarray, actions: np.ndarray, rewards: np.ndarray
) -> list[EncodedReport]:
    """Rebuild metadata-free :class:`EncodedReport` objects from arrays.

    Round-trips exactly with :func:`encoded_reports_to_arrays` modulo
    metadata (which array form never carries): codes and actions are
    integers, rewards the same float64 values.
    """
    codes = np.asarray(codes, dtype=np.intp).ravel()
    actions = np.asarray(actions, dtype=np.intp).ravel()
    rewards = np.asarray(rewards, dtype=np.float64).ravel()
    if not (codes.shape[0] == actions.shape[0] == rewards.shape[0]):
        raise ValueError(
            "codes, actions and rewards must have matching lengths: "
            f"{codes.shape[0]}, {actions.shape[0]}, {rewards.shape[0]}"
        )
    return [
        EncodedReport(code=int(c), action=int(a), reward=float(r))
        for c, a, r in zip(codes, actions, rewards)
    ]
