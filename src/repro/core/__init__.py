"""The P2B system: local agents, shuffler, central server (paper §3)."""

from .agent import LocalAgent
from .config import AgentMode, P2BConfig
from .participation import RandomizedParticipation, StackedParticipation
from .payload import (
    EncodedReport,
    PendingReports,
    RawReport,
    ReportBatch,
    ReportLog,
    drain_report_batches,
    strip_metadata,
)
from .rounds import DeploymentLoop, RoundStats
from .server import NonPrivateServer, PrivateServer
from .shuffler import Shuffler, ShufflerStats
from .system import CollectionResult, P2BSystem

__all__ = [
    "LocalAgent",
    "AgentMode",
    "P2BConfig",
    "RandomizedParticipation",
    "StackedParticipation",
    "EncodedReport",
    "RawReport",
    "ReportBatch",
    "ReportLog",
    "PendingReports",
    "drain_report_batches",
    "strip_metadata",
    "PrivateServer",
    "NonPrivateServer",
    "Shuffler",
    "ShufflerStats",
    "P2BSystem",
    "CollectionResult",
    "DeploymentLoop",
    "RoundStats",
]
