# Test / benchmark / lint targets.  PYTHONPATH=src everywhere so the
# package also works in place without `pip install -e .` (CI installs
# it properly; see .github/workflows/ci.yml).
#
# PYTHONHASHSEED is pinned so anything that iterates hash-ordered
# containers is reproducible run to run — benches under CI must be
# deterministic up to wall-clock timings.

PY := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) PYTHONHASHSEED=0 python

.PHONY: test test-par smoke chaos bench bench-fleet bench-replay bench-reporting bench-memory bench-serve bench-kernels bench-parallel lint format install

# tier-1: the full suite (the driver's acceptance gate)
test:
	$(PY) -m pytest -x -q

# tier-1 on all cores via pytest-xdist (CI's full job; needs the
# `test` extra — local `make test` stays serial and dependency-free)
test-par:
	$(PY) -m pytest -x -q -n auto

# tier-1 smoke: skip @pytest.mark.slow for quick pre-commit iteration
smoke:
	$(PY) -m pytest -x -q -m "not slow"

# chaos smoke: the whole sim suite under a seeded fault plan (worker
# raises + hard crashes, recovered by default supervision with zero
# unhandled crashes and zero bitwise drift), then a multi-worker pass
# of the parallel/shm/invariance suites (chaos recovery must also be
# worker-count-invariant and leak no shm segments), then the
# deterministic counter report (benchmarks/chaos_summary.py; CI pipes
# it into the step summary)
chaos:
	REPRO_FAULTS="seed=7;raise=0.03;crash=0.03" $(PY) -m pytest tests/sim -q
	REPRO_FAULTS="seed=7;raise=0.03;crash=0.03" REPRO_PARALLEL_WORKERS="2,4" \
		$(PY) -m pytest tests/sim/test_parallel.py tests/sim/test_shm.py \
		tests/sim/test_worker_invariance.py -q
	$(PY) benchmarks/chaos_summary.py

# all paper-figure benches; seeded throughout, writes only into
# benchmarks/results/ (*.txt tables + BENCH_*.json perf records)
bench:
	$(PY) -m pytest benchmarks/ -q

# fleet-engine throughput record (writes benchmarks/results/BENCH_fleet.json;
# speedup floors tunable via BENCH_FLEET_MIN_SPEEDUP[_HET] for noisy CI runners)
bench-fleet:
	$(PY) -m pytest benchmarks/bench_fleet_engine.py -q

# replay-plan fast path on the dataset workloads (multilabel + Criteo;
# writes benchmarks/results/BENCH_replay.json; floor tunable via
# BENCH_REPLAY_MIN_SPEEDUP)
bench-replay:
	$(PY) -m pytest benchmarks/bench_replay.py -q

# columnar reporting pipeline, end-to-end with collection rounds
# (writes benchmarks/results/BENCH_reporting.json; floor tunable via
# BENCH_REPORTING_MIN_SPEEDUP)
bench-reporting:
	$(PY) -m pytest benchmarks/bench_reporting.py -q

# traced-plan memory record: shared row tables vs per-agent tables +
# chunked horizons (writes benchmarks/results/BENCH_memory.json; the
# byte-accounting floor is deterministic, tunable via
# BENCH_MEMORY_MIN_REDUCTION)
bench-memory:
	$(PY) -m pytest benchmarks/bench_memory.py -q

# serving-loop requests-per-second record: churn + drift + async
# collection on a hot persistent fleet (writes
# benchmarks/results/BENCH_serve.json; floor tunable via
# BENCH_SERVE_MIN_RPS, scale via BENCH_SERVE_N_AGENTS)
bench-serve:
	$(PY) -m pytest benchmarks/bench_serve.py -q

# dense-LinUCB scoring-kernel microbenchmarks: blocked vs unblocked
# (asserted bitwise), float32 fast kernel, incremental UCB, batched
# Thompson draws (writes benchmarks/results/BENCH_kernels.json; floors
# tunable via BENCH_KERNELS_MIN_*, scale via BENCH_KERNELS_N_AGENTS)
bench-kernels:
	$(PY) -m pytest benchmarks/bench_kernels.py -q

# parallel-backend scaling record: serial vs n_workers on both
# backends + sweep-level fan-out, every run asserted bit-identical
# (writes benchmarks/results/BENCH_parallel.json with cpu_count; the
# process-backend floor BENCH_PARALLEL_MIN_SPEEDUP is enforced only
# when set — worker scaling needs cores, so CI's multi-core runners
# set it; scale via BENCH_PARALLEL_N_AGENTS / _N_INTERACTIONS)
bench-parallel:
	$(PY) -m pytest benchmarks/bench_parallel.py -q -p no:cacheprovider

# lint + format check (config in pyproject.toml [tool.ruff])
lint:
	ruff check src tests benchmarks examples
	ruff format --check src tests benchmarks examples

# apply formatting + autofixes
format:
	ruff format src tests benchmarks examples
	ruff check --fix src tests benchmarks examples

install:
	pip install -e ".[test]"
