# Test / benchmark targets.  PYTHONPATH=src everywhere: the package is
# used in place, never installed.

PY := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python

.PHONY: test smoke bench bench-fleet

# tier-1: the full suite (the driver's acceptance gate)
test:
	$(PY) -m pytest -x -q

# tier-1 smoke: skip @pytest.mark.slow for quick pre-commit iteration
smoke:
	$(PY) -m pytest -x -q -m "not slow"

# all paper-figure benches (writes benchmarks/results/*.txt)
bench:
	$(PY) -m pytest benchmarks/ -q

# fleet-engine throughput record (writes benchmarks/results/BENCH_fleet.json)
bench-fleet:
	$(PY) -m pytest benchmarks/bench_fleet_engine.py -q
