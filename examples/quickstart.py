#!/usr/bin/env python
"""Quickstart: a complete P2B round-trip in ~40 lines.

Builds a warm-private P2B deployment on the paper's synthetic
preference benchmark, runs a contribution phase, prints the privacy
report, and shows a warm-started agent beating a cold one.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import AgentMode, P2BConfig, P2BSystem, SyntheticPreferenceEnvironment


def run_agent(agent, session, n_steps: int) -> float:
    """Interact ``n_steps`` times; return the mean ground-truth reward."""
    total = 0.0
    for _ in range(n_steps):
        x = session.next_context()
        action = agent.act(x)
        reward = session.reward(action)
        agent.learn(x, action, reward)
        total += session.expected_rewards()[action]
    return total / n_steps


def main() -> None:
    env = SyntheticPreferenceEnvironment(
        n_actions=10, n_features=10, weight_scale=8.0, seed=0
    )
    config = P2BConfig(
        n_actions=10,
        n_features=10,
        n_codes=64,  # k: the codebook size (crowds of ~U/k users per code)
        p=0.5,  # participation probability  =>  eps = ln 2
        window=10,  # T local interactions per participation coin
        shuffler_threshold=1,
    )
    system = P2BSystem(config, mode=AgentMode.WARM_PRIVATE, seed=0)

    # --- contribution phase: 5000 users interact and opportunistically report
    contributors = [system.new_agent() for _ in range(5000)]
    users = env.user_population(5000, seed=1)
    for agent, user in zip(contributors, users):
        run_agent(agent, user, n_steps=10)
    outcome = system.collect(contributors)
    print(f"reports collected: {outcome.n_reports}, released after shuffling: "
          f"{outcome.n_released}")
    print(system.privacy_report())  # eps = ln 2 ~ 0.693 at p = 0.5

    # --- evaluation: warm-started agents vs a cold agent on fresh users
    warm_rewards, cold_rewards = [], []
    for seed in range(40):
        warm = system.new_warm_agent()
        warm_rewards.append(run_agent(warm, env.new_user(1000 + seed), 10))
        cold_system = P2BSystem(config, mode=AgentMode.COLD, seed=seed)
        cold = cold_system.new_agent()
        cold_rewards.append(run_agent(cold, env.new_user(1000 + seed), 10))
    print(f"warm-private mean reward: {np.mean(warm_rewards):.4f}")
    print(f"cold          mean reward: {np.mean(cold_rewards):.4f}")


if __name__ == "__main__":
    main()
