#!/usr/bin/env python
"""Multi-label classification with bandit feedback — the paper's §5.2.

Generates a TextMining-like corpus (d=20 features, A=20 labels), splits
agents 70/30 into contributors and evaluators, and reports accuracy
(= mean bandit reward) as local interactions grow — the data behind the
paper's Figure 6 and the "within 3.6% of non-private" headline.

Run:  python examples/multilabel_classification.py [--dataset mediamill]
"""

from __future__ import annotations

import argparse

from repro import P2BConfig, make_mediamill_like, make_textmining_like
from repro.data import MultilabelBanditEnvironment
from repro.encoding import KMeansEncoder
from repro.experiments import compare_settings


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--dataset", choices=("mediamill", "textmining"), default="textmining"
    )
    parser.add_argument(
        "--agents",
        type=int,
        default=3000,
        help="total simulated users; the private-vs-nonprivate gap "
        "approaches the paper's 3.6% at the paper's 3000-agent scale",
    )
    parser.add_argument("--interactions", type=int, default=100)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    maker = make_mediamill_like if args.dataset == "mediamill" else make_textmining_like
    dataset = maker(20_000, seed=args.seed)
    print(
        f"{dataset.name}: {dataset.n_samples} samples, d={dataset.n_features}, "
        f"A={dataset.n_labels}, {dataset.label_cardinality:.1f} labels/sample"
    )

    config = P2BConfig(
        n_actions=dataset.n_labels,
        n_features=dataset.n_features,
        n_codes=32,
        p=0.5,
        window=10,
        shuffler_threshold=5,
    )
    encoder = KMeansEncoder(
        n_codes=32, n_features=dataset.n_features, q=1, seed=args.seed
    ).fit(dataset.X[:5000])

    def env_factory() -> MultilabelBanditEnvironment:
        return MultilabelBanditEnvironment(dataset, samples_per_user=100, seed=args.seed)

    n_contrib = int(0.7 * args.agents)
    comparison = compare_settings(
        env_factory,
        config,
        n_contributors=n_contrib,
        contributor_interactions=30,
        n_eval_agents=min(args.agents - n_contrib, 120),
        eval_interactions=args.interactions,
        seed=args.seed,
        encoder=encoder,
    )
    print()
    print(comparison.render_summary(title=f"{dataset.name} accuracy by setting"))
    print()
    print(comparison.render_curves(
        title="accuracy vs local interactions",
        every=max(args.interactions // 10, 1),
    ))
    gap = (
        comparison["warm-nonprivate"].mean_reward
        - comparison["warm-private"].mean_reward
    )
    print(f"\nprivacy cost (non-private minus private accuracy): {gap:+.4f}")


if __name__ == "__main__":
    main()
