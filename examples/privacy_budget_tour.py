#!/usr/bin/env python
"""A tour of P2B's privacy accounting (paper §2, §4).

Walks through every quantity in the paper's analysis with live numbers:
context-space cardinality (Eq. 1), the eps(p) curve (Eq. 3), the delta
bound (Eq. 2), crowd-blending audits of an actual shuffler batch,
composition for multi-report users, and a comparison against RAPPOR's
LDP budget.

Run:  python examples/privacy_budget_tour.py
"""

from __future__ import annotations

import numpy as np

from repro import EncodedReport, Shuffler
from repro.privacy import (
    PrivacyReport,
    advanced_composition,
    basic_composition,
    context_cardinality,
    delta_bound,
    epsilon_from_p,
    p_from_epsilon,
    rappor_permanent_epsilon,
    required_l_for_delta,
    verify_crowd_blending,
)
from repro.utils.tables import format_kv, format_series


def main() -> None:
    print("=== Eq. 1: how many distinct quantized contexts exist? ===")
    for d in (3, 5, 10, 20):
        print(f"  d={d:>2}, q=1  ->  n = {context_cardinality(1, d):,}")
    print()

    print("=== Eq. 3: the privacy lever eps(p)  (Figure 3) ===")
    ps = [0.1, 0.25, 0.5, 0.75, 0.9]
    print(format_series(ps, {"epsilon": [epsilon_from_p(p) for p in ps]}, x_name="p"))
    print(f"  inverse: a budget of eps=1.0 allows p = {p_from_epsilon(1.0):.3f}")
    print()

    print("=== Eq. 2: delta shrinks exponentially in the crowd size l ===")
    print(format_series(
        [5, 10, 20, 40],
        {"delta(p=0.5)": [delta_bound(l, 0.5) for l in (5, 10, 20, 40)]},
        x_name="l",
    ))
    print(f"  for delta <= 1e-6 at p=0.5 you need l >= {required_l_for_delta(1e-6, 0.5)}")
    print()

    print("=== the shuffler enforces crowd-blending operationally ===")
    rng = np.random.default_rng(0)
    batch = [
        EncodedReport(code=int(c), action=0, reward=1.0, metadata={"agent_id": f"u{i}"})
        for i, c in enumerate(rng.integers(0, 6, size=200))
    ]
    shuffler = Shuffler(threshold=25, seed=0)
    released, stats = shuffler.process(batch)
    print(f"  received {stats.n_received}, released {stats.n_released} "
          f"(dropped {stats.n_dropped} below l={shuffler.threshold})")
    audit = verify_crowd_blending([r.code for r in released], 25)
    print(f"  audit: satisfied={audit.satisfied}, smallest crowd={audit.smallest}")
    print()

    print("=== composition: users sending r tuples (paper §6) ===")
    eps = epsilon_from_p(0.5)
    for r in (1, 5, 25):
        basic_eps, _ = basic_composition(eps, r)
        adv_eps, _ = advanced_composition(eps, r, delta_prime=1e-6)
        print(f"  r={r:>2}: basic eps={basic_eps:6.3f}   advanced eps={adv_eps:6.3f}")
    print()

    print("=== the full deployment report ===")
    report = PrivacyReport(p=0.5, l=10, tuples_per_user=1)
    print(format_kv(report.as_dict(), title="  PrivacyReport(p=0.5, l=10)"))
    print()

    print("=== versus RAPPOR's local-DP budget (paper §2.3) ===")
    for f in (0.25, 0.5, 0.75):
        print(f"  RAPPOR f={f}: permanent eps = {rappor_permanent_epsilon(f):.3f}")
    print(f"  P2B at p=0.5:            eps = {eps:.3f}")


if __name__ == "__main__":
    main()
