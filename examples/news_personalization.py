#!/usr/bin/env python
"""Personalized news recommendation — the paper's motivating scenario (§1).

A news service recommends one of ``A`` article categories to each user
based on their interest profile (a normalized histogram over topics).
This script compares all three §5 settings on the synthetic preference
benchmark and prints the learning summary plus the privacy price tag.

Run:  python examples/news_personalization.py [--users 2000]
"""

from __future__ import annotations

import argparse

from repro import P2BConfig, SyntheticPreferenceEnvironment
from repro.experiments import compare_settings
from repro.privacy import PrivacyReport


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=6000, help="contributing users")
    parser.add_argument("--topics", type=int, default=10, help="interest dimensions d")
    parser.add_argument("--categories", type=int, default=10, help="article categories A")
    parser.add_argument("--codes", type=int, default=32, help="codebook size k")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    config = P2BConfig(
        n_actions=args.categories,
        n_features=args.topics,
        n_codes=args.codes,
        p=0.5,
        window=10,
        shuffler_threshold=1,
    )

    def env_factory() -> SyntheticPreferenceEnvironment:
        return SyntheticPreferenceEnvironment(
            n_actions=args.categories,
            n_features=args.topics,
            weight_scale=8.0,
            seed=args.seed,
        )

    comparison = compare_settings(
        env_factory,
        config,
        n_contributors=args.users,
        contributor_interactions=10,
        n_eval_agents=50,
        eval_interactions=10,
        seed=args.seed,
        measure="expected",
    )
    print(comparison.render_summary(
        title=f"news personalization: {args.users} users, "
        f"{args.categories} categories, {args.topics} topics"
    ))
    print()
    report = PrivacyReport(p=config.p, l=config.shuffler_threshold)
    print(f"privacy price tag: {report}")
    private = comparison["warm-private"].mean_reward
    nonprivate = comparison["warm-nonprivate"].mean_reward
    cold = comparison["cold"].mean_reward
    if nonprivate > 0:
        print(
            "private warm start recovers "
            f"{100 * (private - cold) / max(nonprivate - cold, 1e-9):.0f}% of the "
            "non-private improvement over cold start"
        )


if __name__ == "__main__":
    main()
