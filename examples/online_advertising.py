#!/usr/bin/env python
"""Online advertising with replay evaluation — the paper's §5.3 workload.

Generates a Criteo-like ad stream, pushes it through the paper's exact
label pipeline (26 categorical features -> feature hashing -> top-40
labels), and compares CTR across the three settings.  This is the
experiment where the paper observes the private setting eventually
*beating* the non-private one.

Run:  python examples/online_advertising.py [--records 30000]
"""

from __future__ import annotations

import argparse

from repro import P2BConfig, build_criteo_actions, make_criteo_like
from repro.data import CriteoBanditEnvironment
from repro.encoding import KMeansEncoder
from repro.experiments import compare_settings


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--records", type=int, default=40_000, help="raw ad records")
    parser.add_argument(
        "--agents",
        type=int,
        default=3000,
        help="total simulated users (the paper's scale; the warm-start "
        "effect needs >~2000 contributors to show)",
    )
    parser.add_argument("--impressions", type=int, default=200, help="impressions per user")
    parser.add_argument("--codes", type=int, default=32, help="codebook size k")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(f"generating {args.records} ad records ...")
    records = make_criteo_like(args.records, seed=args.seed)
    dataset = build_criteo_actions(records, n_actions=40, d=10)
    print(
        f"pipeline kept {dataset.n_samples} impressions "
        f"(logged CTR {dataset.logged_ctr:.3f})"
    )

    config = P2BConfig(
        n_actions=40,
        n_features=10,
        n_codes=args.codes,
        p=0.5,
        window=10,
        shuffler_threshold=3,
        private_context="centroid",
    )
    encoder = KMeansEncoder(n_codes=args.codes, n_features=10, q=1, seed=args.seed).fit(
        dataset.X[:5000]
    )

    def env_factory() -> CriteoBanditEnvironment:
        return CriteoBanditEnvironment(
            dataset, impressions_per_user=args.impressions, seed=args.seed
        )

    n_contrib = int(0.7 * args.agents)
    comparison = compare_settings(
        env_factory,
        config,
        n_contributors=n_contrib,
        contributor_interactions=30,
        n_eval_agents=min(args.agents - n_contrib, 100),
        eval_interactions=args.impressions,
        seed=args.seed,
        encoder=encoder,
    )
    print()
    print(comparison.render_summary(title="CTR by setting (mean over eval impressions)"))
    print()
    print(comparison.render_curves(
        title="cumulative CTR vs local interactions",
        every=max(args.impressions // 10, 1),
    ))


if __name__ == "__main__":
    main()
